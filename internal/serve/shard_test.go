package serve

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/frac"
)

func testShard(t *testing.T, cfg ShardConfig, mailboxCap int) *Shard {
	t.Helper()
	sh, err := newShard(0, cfg, mailboxCap)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// admitOne pushes a single command through admission on the test
// goroutine (the test is the single writer until start() is called).
func admitOne(sh *Shard, op pendingOp, task string, w frac.Rat) CommandResult {
	c := wireCmd{op: op, raw: []byte(task), weight: w}
	return sh.admit(&c, true)
}

func TestAdmissionPropertyW(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 1}, 8)

	if res := admitOne(sh, opJoin, "A", frac.New(1, 2)); res.Status != "queued" {
		t.Fatalf("join A: %+v", res)
	}
	if res := admitOne(sh, opJoin, "B", frac.New(1, 4)); res.Status != "queued" {
		t.Fatalf("join B: %+v", res)
	}
	// Headroom is down to 1/4; a 1/2 join must be rejected with the exact
	// remainder.
	res := admitOne(sh, opJoin, "C", frac.New(1, 2))
	if res.Status != "rejected" || res.Error != errWeight || res.Code != 409 {
		t.Fatalf("over-capacity join admitted: %+v", res)
	}
	if res.Headroom != "1/4" {
		t.Fatalf("headroom = %q, want 1/4", res.Headroom)
	}
	// A fitting join still passes afterwards.
	if res := admitOne(sh, opJoin, "D", frac.New(1, 4)); res.Status != "queued" {
		t.Fatalf("join D: %+v", res)
	}
	// Duplicate name: conflict, not weight.
	res = admitOne(sh, opJoin, "A", frac.New(1, 8))
	if res.Status != "rejected" || res.Error != errConflict {
		t.Fatalf("duplicate join: %+v", res)
	}
	// Unknown task reweight.
	res = admitOne(sh, opReweight, "nope", frac.New(1, 8))
	if res.Status != "rejected" || res.Error != errUnknown || res.Code != 404 {
		t.Fatalf("unknown reweight: %+v", res)
	}
	// Reweight of a task whose join is still pending is a conflict: the
	// engine does not know the task yet.
	res = admitOne(sh, opReweight, "A", frac.New(1, 8))
	if res.Status != "rejected" || res.Error != errConflict {
		t.Fatalf("reweight before join applied: %+v", res)
	}
	sh.advance(1) // boundary: joins apply
	// Now the reweight is admissible, but only within headroom: A may go
	// to 1/4 (total 3/4) but not to weights that burst M.
	if res := admitOne(sh, opReweight, "A", frac.New(1, 4)); res.Status != "queued" {
		t.Fatalf("reweight A: %+v", res)
	}
	if got := sh.adm.total.String(); got != "3/4" {
		t.Fatalf("requested total = %s, want 3/4", got)
	}
	if sh.ctr.failedApplies.Load() != 0 {
		t.Fatalf("failedApplies = %d", sh.ctr.failedApplies.Load())
	}
}

func TestBatchAppliesAtSlotBoundary(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 2}, 8)
	admitOne(sh, opJoin, "A", frac.New(1, 4))
	admitOne(sh, opJoin, "B", frac.New(1, 3))
	// Staged, not applied: the engine is still empty.
	if n := len(sh.eng.TaskNames()); n != 0 {
		t.Fatalf("engine saw %d tasks before the boundary", n)
	}
	if len(sh.batch) != 2 {
		t.Fatalf("batch length %d, want 2", len(sh.batch))
	}
	sh.advance(1)
	if n := len(sh.eng.TaskNames()); n != 2 {
		t.Fatalf("engine has %d tasks after the boundary, want 2", n)
	}
	if got := sh.eng.TotalSchedWeight().String(); got != "7/12" {
		t.Fatalf("engine total weight %s, want 7/12", got)
	}
	if len(sh.batch) != 0 {
		t.Fatal("batch not cleared at boundary")
	}
	if sh.ctr.applied.Load() != 2 || sh.ctr.failedApplies.Load() != 0 {
		t.Fatalf("applied=%d failed=%d", sh.ctr.applied.Load(), sh.ctr.failedApplies.Load())
	}
}

func TestDeferredLeaveRuleL(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 1}, 8)
	admitOne(sh, opJoin, "A", frac.New(1, 3))
	sh.advance(2)
	res := admitOne(sh, opLeave, "A", frac.Rat{})
	if res.Status != "queued" {
		t.Fatalf("leave: %+v", res)
	}
	// A second leave while the first is pending is a conflict.
	if res := admitOne(sh, opLeave, "A", frac.Rat{}); res.Error != errConflict {
		t.Fatalf("double leave: %+v", res)
	}
	// Weight stays booked until the engine actually applies the leave
	// (rule L can defer it past several boundaries).
	for i := 0; i < 20 && sh.adm.live > 0; i++ {
		sh.advance(1)
	}
	if sh.adm.live != 0 {
		t.Fatal("leave never applied within 20 slots")
	}
	if !sh.adm.total.IsZero() {
		t.Fatalf("requested total %s after leave, want 0", sh.adm.total)
	}
	if sh.ctr.failedApplies.Load() != 0 {
		t.Fatalf("failedApplies = %d", sh.ctr.failedApplies.Load())
	}
	// The freed weight is reusable, the name is not.
	if res := admitOne(sh, opJoin, "A", frac.New(1, 3)); res.Error != errConflict {
		t.Fatalf("rejoin of burned name: %+v", res)
	}
	if res := admitOne(sh, opJoin, "A2", frac.New(1, 3)); res.Status != "queued" {
		t.Fatalf("join into freed weight: %+v", res)
	}
}

// TestDeferredJoinConditionJ: admission tracks requested weights, but
// the engine's transient scheduling weight can exceed them while
// reweight-downs await enactment. A join admitted by property (W) but
// blocked by condition J must defer, not fail.
func TestDeferredJoinConditionJ(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 2}, 8)
	for _, name := range []string{"A", "B", "C", "D"} {
		if res := admitOne(sh, opJoin, name, frac.New(1, 2)); res.Status != "queued" {
			t.Fatalf("join %s: %+v", name, res)
		}
	}
	sh.advance(2)
	// Drop everyone to 1/8: requested total 1/2, engine swt still 2 until
	// the negative changes enact.
	for _, name := range []string{"A", "B", "C", "D"} {
		if res := admitOne(sh, opReweight, name, frac.New(1, 8)); res.Status != "queued" {
			t.Fatalf("reweight %s: %+v", name, res)
		}
	}
	if res := admitOne(sh, opJoin, "E", frac.New(1, 2)); res.Status != "queued" {
		t.Fatalf("join E rejected by admission: %+v", res)
	}
	sh.advance(1)
	deferredAtFirstBoundary := len(sh.defJoins) > 0
	for i := 0; i < 30; i++ {
		if _, ok := sh.eng.Metrics("E"); ok {
			break
		}
		sh.advance(1)
	}
	if _, ok := sh.eng.Metrics("E"); !ok {
		t.Fatal("join E never applied within 30 slots")
	}
	if !deferredAtFirstBoundary && sh.ctr.deferred.Load() == 0 {
		t.Log("join E was never deferred (engine drained swt immediately); condition-J path untested here")
	}
	if sh.ctr.failedApplies.Load() != 0 {
		t.Fatalf("failedApplies = %d", sh.ctr.failedApplies.Load())
	}
}

func TestMailboxBackpressure(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 1}, 2)
	// Loop not started: submits park in the mailbox until it is full.
	for i := 0; i < 2; i++ {
		p := sh.pool.newPending()
		p.kind = pendQuery
		if !sh.submit(p) {
			t.Fatalf("submit %d rejected below capacity", i)
		}
	}
	p := sh.pool.newPending()
	p.kind = pendQuery
	if sh.submit(p) {
		t.Fatal("submit accepted beyond mailbox capacity")
	}
	sh.pool.freePending(p)
}

// TestShardLoopDrain exercises the concurrent path: many goroutines
// submit through the mailbox while the loop runs, then the shard stops
// and every in-flight record still gets a reply.
func TestShardLoopDrain(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 4}, 16)
	sh.start()
	const workers = 8
	const perWorker = 50
	results := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := sh.pool.newPending()
				p.kind = pendQuery
				if !sh.submit(p) {
					sh.pool.freePending(p)
					continue
				}
				rep := <-p.reply
				sh.pool.freePending(p)
				if rep.status != nil {
					results[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	sh.stop()
	total := 0
	for _, n := range results {
		total += n
	}
	if total == 0 {
		t.Fatal("no queries answered")
	}
	if got := sh.ctr.queries.Load(); got != int64(total) {
		t.Fatalf("shard counted %d queries, workers saw %d", got, total)
	}
}

func TestStateDumpMatchesEngine(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 2, RecordSchedule: true}, 8)
	admitOne(sh, opJoin, "A", frac.New(1, 4))
	admitOne(sh, opJoin, "B", frac.New(1, 3))
	sh.advance(10)
	var b strings.Builder
	if err := sh.eng.WriteState(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "task A") || !strings.Contains(b.String(), "slot 5:") {
		t.Fatalf("state dump missing expected sections:\n%s", b.String())
	}
}
