package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/frac"
)

// The codec's contract is byte-for-byte agreement with encoding/json in
// both directions (see codec.go). These tests pin it: golden encoder
// comparisons over adversarial strings, a differential decoder harness
// against the legacy json.Unmarshal+parseCommand pipeline, fuzz entry
// points for both, and the zero-allocation proof the tentpole claims.

// nastyStrings exercises every escaping branch: HTML characters,
// control bytes (short and \u00xx forms), DEL (not escaped), invalid
// UTF-8, U+2028/U+2029, multibyte runes, quotes and backslashes.
var nastyStrings = []string{
	"",
	"plain",
	"a<b>&c",
	"quote\"back\\slash",
	"tab\tnl\ncr\r",
	"ctrl\x00\x01\x1fdel\x7f",
	"bad\xff\xfeutf8",
	"truncated\xe6\x97",
	"line\u2028sep\u2029par",
	"日本語 text",
	"emoji \U0001F600 pair",
}

func TestEncoderByteCompatible(t *testing.T) {
	results := []CommandResult{
		{Status: "queued", Slot: 42},
		{Status: "queued"},
		{Status: "rejected", Code: 409, Error: errWeight, Reason: "join x exceeds property (W)", Headroom: "1/4"},
		{Status: "rejected", Code: 404, Error: errUnknown, Reason: "task \"nope\" never joined"},
		{Status: "rejected", Slot: -7, Code: 409, Error: errConflict, Reason: "already leaving"},
	}
	for _, s := range nastyStrings {
		results = append(results, CommandResult{Status: s, Reason: s, Headroom: s})
	}

	for i := range results {
		want, err := json.Marshal(results[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := appendCommandResult(nil, &results[i]); !bytes.Equal(got, want) {
			t.Errorf("result %d: codec %q, encoding/json %q", i, got, want)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(results[i]); err != nil {
			t.Fatal(err)
		}
		if got := appendCommandResultLine(nil, &results[i]); !bytes.Equal(got, buf.Bytes()) {
			t.Errorf("result line %d: codec %q, encoding/json %q", i, got, buf.Bytes())
		}
	}

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(results); err != nil {
		t.Fatal(err)
	}
	if got := appendCommandResults(nil, results); !bytes.Equal(got, buf.Bytes()) {
		t.Errorf("results array:\ncodec         %q\nencoding/json %q", got, buf.Bytes())
	}

	for _, now := range []int64{0, 1, -3, 1 << 40, -(1 << 62)} {
		buf.Reset()
		if err := json.NewEncoder(&buf).Encode(AdvanceResponse{Now: now}); err != nil {
			t.Fatal(err)
		}
		if got := appendAdvanceResponse(nil, now); !bytes.Equal(got, buf.Bytes()) {
			t.Errorf("advance %d: codec %q, encoding/json %q", now, got, buf.Bytes())
		}
	}
}

// legacyDecodeCommands is the pre-codec pipeline — encoding/json
// decoding plus parseCommand validation, exactly as handleCommands ran
// it — kept as the reference implementation the codec must agree with.
func legacyDecodeCommands(body []byte) ([]wireCmd, bool, error) {
	isArray := false
	for _, c := range body {
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			continue
		}
		isArray = c == '['
		break
	}
	var reqs []CommandRequest
	if isArray {
		if err := json.Unmarshal(body, &reqs); err != nil {
			return nil, true, err
		}
	} else {
		var one CommandRequest
		if err := json.Unmarshal(body, &one); err != nil {
			return nil, false, err
		}
		reqs = []CommandRequest{one}
	}
	out := make([]wireCmd, 0, len(reqs))
	for i := range reqs {
		op, w, err := parseCommand(reqs[i])
		if err != nil {
			return nil, isArray, fmt.Errorf("command %d: %v", i, err)
		}
		out = append(out, wireCmd{op: op, raw: []byte(reqs[i].Task), weight: w, group: reqs[i].Group})
	}
	return out, isArray, nil
}

func checkCommandsAgreement(t testing.TB, body []byte) {
	t.Helper()
	gotCmds, _, gotBatch, gotErr := decodeCommands(body, nil, nil)
	wantCmds, wantBatch, wantErr := legacyDecodeCommands(body)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("body %q:\ncodec err:  %v\nlegacy err: %v", body, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if gotBatch != wantBatch {
		t.Fatalf("body %q: codec batch=%v, legacy batch=%v", body, gotBatch, wantBatch)
	}
	if len(gotCmds) != len(wantCmds) {
		t.Fatalf("body %q: codec %d commands, legacy %d", body, len(gotCmds), len(wantCmds))
	}
	for i := range gotCmds {
		g, w := gotCmds[i], wantCmds[i]
		if g.op != w.op || !bytes.Equal(g.raw, w.raw) || g.weight != w.weight || g.group != w.group {
			t.Fatalf("body %q command %d: codec {op:%d task:%q weight:%s group:%q}, legacy {op:%d task:%q weight:%s group:%q}",
				body, i, g.op, g.raw, g.weight, g.group, w.op, w.raw, w.weight, w.group)
		}
	}
}

func checkAdvanceAgreement(t testing.TB, body []byte) {
	t.Helper()
	gotSlots, gotErr := decodeAdvance(body)
	var req AdvanceRequest
	var wantErr error
	if len(body) > 0 {
		wantErr = json.Unmarshal(body, &req)
	}
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("body %q:\ncodec err:         %v\nencoding/json err: %v", body, gotErr, wantErr)
	}
	if gotErr == nil && gotSlots != req.Slots {
		t.Fatalf("body %q: codec slots=%d, encoding/json slots=%d", body, gotSlots, req.Slots)
	}
}

// commandCorpus seeds both the table test and the fuzzer. Each entry is
// checked for outcome agreement (and value agreement on success) with
// the legacy pipeline.
var commandCorpus = []string{
	// Valid commands, all ops.
	`{"op":"join","task":"a","weight":"1/2"}`,
	`{"op":"reweight","task":"a","weight":"3/7","group":"g1"}`,
	`{"op":"leave","task":"a"}`,
	`{"op":"leave","task":"a","weight":"ignored for leave? no: parsed"}`,
	` [ {"op":"join","task":"x","weight":"1/4"} , {"op":"leave","task":"y"} ] `,
	"\t{\"op\":\"join\",\"task\":\"ws\",\"weight\":\"1/3\"}\n",
	// Key handling: case folding, duplicates, unknown fields, null.
	`{"OP":"join","Task":"a","WeIgHt":"1/2"}`,
	`{"op":"leave","op":"join","task":"a","weight":"1/2"}`,
	`{"op":"join","task":"a","weight":"1/3","weight":"1/2"}`,
	`{"op":"leave","task":"a","extra":{"deep":[1,2,{"y":null}],"f":-1.5e-3,"t":true}}`,
	`{"op":"join","task":null,"weight":"1/2"}`,
	`{"op":null,"task":"a"}`,
	`{}`,
	`null`,
	`[]`,
	`[null]`,
	`[{},null]`,
	// String escapes and encodings.
	`{"op":"leave","task":"\u0041\n\t\"\\\/"}`,
	`{"op":"leave","task":"\ud83d\ude00 pair"}`,
	`{"op":"leave","task":"\ud800"}`,
	`{"op":"leave","task":"\ud800\u0041"}`,
	`{"op":"leave","task":"\ud800\ud800"}`,
	`{"op":"leave","task":"\ude00 low first"}`,
	"{\"op\":\"leave\",\"task\":\"raw\xff\xfebytes\"}",
	"{\"op\":\"leave\",\"task\":\"trunc\xe6\x97\"}",
	"{\"op\":\"leave\",\"task\":\"multi日本\"}",
	`{"\u006fp":"leave","task":"escaped key"}`,
	"{\"op\":\"leave\",\"task\":\"ctrl\x01char\"}",
	`{"op":"leave","task":"bad\x41escape"}`,
	`{"op":"leave","task":"unterminated`,
	// Weight grammar (frac.Parse parity).
	`{"op":"join","task":"a","weight":" 1/2"}`,
	`{"op":"join","task":"a","weight":"+1/4"}`,
	`{"op":"join","task":"a","weight":"01/016"}`,
	`{"op":"join","task":"a","weight":"1 / 2"}`,
	`{"op":"join","task":"a","weight":"1/0"}`,
	`{"op":"join","task":"a","weight":"1/2/3"}`,
	`{"op":"join","task":"a","weight":"abc"}`,
	`{"op":"join","task":"a","weight":"-1/-2"}`,
	`{"op":"join","task":"a","weight":"9223372036854775808/2"}`,
	`{"op":"join","task":"a","weight":"3/9223372036854775807"}`,
	"{\"op\":\"join\",\"task\":\"a\",\"weight\":\"\u00a01/2\u00a0\"}",
	`{"op":"join","task":"a","weight":"1_0/20"}`,
	`{"op":"join","task":"a","weight":1}`,
	`{"op":"join","task":"a"}`,
	`{"op":"join","task":"","weight":"1/2"}`,
	`{"op":"sideways","task":"a"}`,
	// Malformed JSON.
	``,
	`   `,
	`true`,
	`"string"`,
	`123`,
	`{"op":"leave","task":"a"} trailing`,
	`{"op":"leave","task":"a",}`,
	`[{"op":"leave","task":"a"},]`,
	`[{"op":"leave","task":"a"}`,
	`{"op" "leave"}`,
	`{op:"leave"}`,
	`[{"op":"bad","task":"a"},{"op":"leave" "task":"b"}]`,
	`[{"op":"leave","task":"a"},{"op":"bad","task":"b"}]`,
	`[[{"op":"leave","task":"a"}]]`,
	`[{"op":"leave","task":"a"},42]`,
	`{"op":"leave","task":"a","x":01}`,
	`{"op":"leave","task":"a","x":1.}`,
	`{"op":"leave","task":"a","x":1e}`,
	`{"op":"leave","task":"a","x":-}`,
}

var advanceCorpus = []string{
	``,
	`{}`,
	`null`,
	` { "slots" : 5 } `,
	`{"slots":0}`,
	`{"slots":-2}`,
	`{"SLOTS":3}`,
	`{"slots":5,"slots":7}`,
	`{"slots":null}`,
	`{"slots":5,"slots":null}`,
	`{"slots":1.5}`,
	`{"slots":"5"}`,
	`{"slots":1e3}`,
	`{"slots":-0}`,
	`{"slots":00}`,
	`{"slots":9223372036854775807}`,
	`{"slots":9223372036854775808}`,
	`{"slots":-9223372036854775808}`,
	`{"x":[1,2],"slots":4}`,
	`{"slots":true}`,
	`{"slots":4`,
	`{"slots":4} x`,
	`[]`,
	`5`,
}

func TestDecodeCommandsAgreesWithLegacy(t *testing.T) {
	for _, body := range commandCorpus {
		checkCommandsAgreement(t, []byte(body))
	}
}

func TestDecodeAdvanceAgreesWithJSON(t *testing.T) {
	for _, body := range advanceCorpus {
		checkAdvanceAgreement(t, []byte(body))
	}
}

func FuzzDecodeCommands(f *testing.F) {
	for _, body := range commandCorpus {
		f.Add([]byte(body))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		checkCommandsAgreement(t, body)
	})
}

func FuzzDecodeAdvance(f *testing.F) {
	for _, body := range advanceCorpus {
		f.Add([]byte(body))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		checkAdvanceAgreement(t, body)
	})
}

// wirePathShard builds a shard with joined, applied tasks t0..t{n-1} at
// weight 1/64, ready to absorb reweights.
func wirePathShard(t testing.TB, n int) *Shard {
	sh, err := newShard(0, ShardConfig{M: 8}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%d", i)
		c := wireCmd{op: opJoin, raw: []byte(name), weight: frac.New(1, 64)}
		if res := sh.admit(&c, true); res.Status != "queued" {
			t.Fatalf("join %s: %+v", name, res)
		}
	}
	sh.advance(1)
	return sh
}

// reweightBatchBody builds a batch body of n reweight commands cycling
// over the shard's tasks.
func reweightBatchBody(n int) []byte {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"op":"reweight","task":"t%d","weight":"%d/64"}`, i, 1+i%8)
	}
	buf.WriteByte(']')
	return buf.Bytes()
}

// TestWirePathZeroAlloc is the tentpole's acceptance criterion: one
// full decode → admit → encode round trip, running in pooled buffers,
// performs zero steady-state allocations.
func TestWirePathZeroAlloc(t *testing.T) {
	const n = 32
	sh := wirePathShard(t, n)
	body := reweightBatchBody(n)
	var (
		esc     []byte
		cmds    []wireCmd
		results []CommandResult
		out     []byte
	)
	round := func() {
		var err error
		cmds, esc, _, err = decodeCommands(body, esc, cmds[:0])
		if err != nil {
			t.Fatal(err)
		}
		results = results[:0]
		for i := range cmds {
			results = append(results, sh.admit(&cmds[i], false))
		}
		sh.batch = sh.batch[:0] // keep the staged batch from growing across rounds
		out = appendCommandResults(out[:0], results)
	}
	round() // warm the buffers
	if allocs := testing.AllocsPerRun(200, round); allocs != 0 {
		t.Fatalf("wire round trip allocates %.1f times per run, want 0", allocs)
	}

	advBody := []byte(`{"slots":3}`)
	advRound := func() {
		slots, err := decodeAdvance(advBody)
		if err != nil || slots != 3 {
			t.Fatalf("decodeAdvance: %d, %v", slots, err)
		}
		out = appendAdvanceResponse(out[:0], slots)
	}
	advRound()
	if allocs := testing.AllocsPerRun(200, advRound); allocs != 0 {
		t.Fatalf("advance round trip allocates %.1f times per run, want 0", allocs)
	}
}

// BenchmarkWirePath measures the full hot-path round trip — decode a
// 32-command reweight batch, admit each command, encode the response —
// the serving cost pd2load pays per batch minus HTTP itself. Tracked in
// BENCH_core.json via make bench-check.
func BenchmarkWirePath(b *testing.B) {
	const n = 32
	sh := wirePathShard(b, n)
	body := reweightBatchBody(n)
	var (
		esc     []byte
		cmds    []wireCmd
		results []CommandResult
		out     []byte
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		cmds, esc, _, err = decodeCommands(body, esc, cmds[:0])
		if err != nil {
			b.Fatal(err)
		}
		results = results[:0]
		for j := range cmds {
			results = append(results, sh.admit(&cmds[j], false))
		}
		sh.batch = sh.batch[:0]
		out = appendCommandResults(out[:0], results)
	}
	_ = out
}
