package serve

import (
	"sync"

	"repro/internal/frac"
)

// The mailbox is the only channel between HTTP handlers and a shard's
// single-writer goroutine: a bounded chan of *pending records drawn
// from a shard-local pool (registered in internal/analysis's poolescape
// table — handlers must not retain a record past freePending). A full
// mailbox is surfaced to the client as 429 + Retry-After; the shard
// side never blocks handlers and never drops a dequeued record without
// replying.

// pendingOp is a parsed wire mutation.
//
//lint:exhaustive -- the three admitted wire mutations
type pendingOp uint8

const (
	opJoin pendingOp = iota
	opLeave
	opReweight
)

// pendingKind discriminates what a mailbox record asks the shard to do.
//
//lint:exhaustive -- every mailbox request the shard loop must answer
type pendingKind uint8

const (
	// pendCommands carries a batch of parsed mutations for admission.
	pendCommands pendingKind = iota
	// pendAdvance asks the shard to step its clock.
	pendAdvance
	// pendQuery asks for a ShardStatus.
	pendQuery
	// pendState asks for the canonical engine-state dump and digest.
	pendState
	// pendSnapshot asks for a full serialized Snapshot.
	pendSnapshot
	// pendLog asks for the replication tail from a log index: the
	// commands applied since, plus the admitted-but-unapplied sets and
	// the admission books (see Tail in snapshot.go).
	pendLog
)

// wireCmd is one parsed, admission-ready command inside a pending. raw
// aliases the record's pooled body/esc buffers and is only valid until
// freePending; task is set by the admission layer to the canonical
// interned name (the *taskEntry's own string) and is what the shard
// stages into batches, so nothing downstream retains request memory.
type wireCmd struct {
	op     pendingOp
	raw    []byte
	task   string
	weight frac.Rat
	group  string
}

// pending is one pooled mailbox record. The reply channel is buffered
// (capacity 1) and reused across generations: the shard sends exactly
// one reply per dequeued record, the handler receives it and returns
// the record to the pool. stamp counts generations for the poolescape
// discipline; a handler holding a record across freePending would
// observe the bump.
type pending struct {
	stamp uint64
	kind  pendingKind

	cmds      []wireCmd // pendCommands
	slots     int64     // pendAdvance
	withTasks bool      // pendQuery: include per-task status rows
	from      int       // pendLog: first log index the tail should carry

	// Pooled wire buffers, owned by the record so the whole
	// read-decode-admit-encode round trip reuses one allocation set:
	// body holds the raw request bytes, esc the decoder's
	// escape-rewrite scratch (wireCmd.raw may alias either), results
	// the shard's per-command answers, and out the encoded response.
	body    []byte
	esc     []byte
	results []CommandResult
	out     []byte

	reply chan reply
}

// reply is the shard's answer to one pending record.
type reply struct {
	results []CommandResult // pendCommands: one per cmds entry
	now     int64           // engine clock after handling
	status  *ShardStatus    // pendQuery
	state   []byte          // pendState (WriteState text), pendSnapshot (JSON)
	digest  uint64          // pendState
	tail    *Tail           // pendLog: fresh copy, not pooled
	err     error           // request-level failure (draining, bad from)
}

// pendingPool recycles pending records. Access is mutex-guarded: the
// allocating side is any HTTP handler goroutine, the freeing side is
// whichever handler received the reply.
type pendingPool struct {
	mu   sync.Mutex
	free []*pending
}

// newPending returns a zeroed record with a live reply channel.
func (pp *pendingPool) newPending() *pending {
	pp.mu.Lock()
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free = pp.free[:n-1]
		pp.mu.Unlock()
		return p
	}
	pp.mu.Unlock()
	return &pending{reply: make(chan reply, 1)}
}

// freePending returns a record to the pool. The caller must have
// received the record's reply (the channel must be empty) and must not
// touch the record afterwards.
func (pp *pendingPool) freePending(p *pending) {
	p.stamp++
	p.kind = 0
	for i := range p.cmds {
		p.cmds[i] = wireCmd{}
	}
	p.cmds = p.cmds[:0]
	p.slots = 0
	p.withTasks = false
	p.from = 0
	p.body = p.body[:0]
	p.esc = p.esc[:0]
	for i := range p.results {
		p.results[i] = CommandResult{}
	}
	p.results = p.results[:0]
	p.out = p.out[:0]
	pp.mu.Lock()
	pp.free = append(pp.free, p)
	pp.mu.Unlock()
}
