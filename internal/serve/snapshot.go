package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/frac"
	"repro/internal/model"
)

// A Snapshot is the complete durable state of one shard. It leans on
// the engine's determinism: instead of serializing the scheduler's
// internal heaps, it records the seed system plus the log of commands
// actually applied — core.Replay rebuilds the engine byte-for-byte, and
// Digest (the engine's state digest at snapshot time) proves it did.
// Admitted-but-unapplied work (the slot batch and the rule-L/J deferral
// queues) and the admission books ride along so a restart loses no
// admitted command.
type Snapshot struct {
	Version int            `json:"version"`
	Shard   int            `json:"shard"`
	Config  ShardConfig    `json:"config"`
	Now     int64          `json:"now"`
	Seed    model.System   `json:"seed"`
	Log     []core.Command `json:"log"`

	Batch          []pendingCmd   `json:"batch,omitempty"`
	DeferredJoins  []pendingCmd   `json:"deferred_joins,omitempty"`
	DeferredLeaves []string       `json:"deferred_leaves,omitempty"`
	Admission      admissionState `json:"admission"`

	Digest uint64 `json:"digest"`
}

// snapshotVersion guards the wire format; bump on incompatible change.
const snapshotVersion = 1

// pendingCmd is the serialized form of an admitted-but-unapplied
// command.
type pendingCmd struct {
	Op     string   `json:"op"`
	Task   string   `json:"task"`
	Weight frac.Rat `json:"weight"`
	Group  string   `json:"group,omitempty"`
}

func toPendingCmds(cmds []wireCmd) []pendingCmd {
	if len(cmds) == 0 {
		return nil
	}
	out := make([]pendingCmd, len(cmds))
	for i, c := range cmds {
		out[i] = pendingCmd{Op: opName(c.op), Task: c.task, Weight: c.weight, Group: c.group}
	}
	return out
}

func fromPendingCmds(cmds []pendingCmd) ([]wireCmd, error) {
	if len(cmds) == 0 {
		return nil, nil
	}
	out := make([]wireCmd, len(cmds))
	for i, c := range cmds {
		op, err := opFromName(c.Op)
		if err != nil {
			return nil, err
		}
		out[i] = wireCmd{op: op, task: c.Task, weight: c.Weight, group: c.Group}
	}
	return out, nil
}

func opName(op pendingOp) string {
	switch op {
	case opJoin:
		return "join"
	case opLeave:
		return "leave"
	case opReweight:
		return "reweight"
	default:
		panic(fmt.Sprintf("serve: unhandled pending op %d", op))
	}
}

func opFromName(name string) (pendingOp, error) {
	switch name {
	case "join":
		return opJoin, nil
	case "leave":
		return opLeave, nil
	case "reweight":
		return opReweight, nil
	}
	return 0, fmt.Errorf("serve: snapshot names unknown op %q", name)
}

// buildSnapshot serializes the shard. Run-goroutine only (or after the
// loop has exited).
//
//lint:allocok snapshots copy the full log and task set by design; rare administrative operation
func (sh *Shard) buildSnapshot() *Snapshot {
	logCopy := make([]core.Command, len(sh.log))
	copy(logCopy, sh.log)
	return &Snapshot{
		Version:        snapshotVersion,
		Shard:          sh.id,
		Config:         sh.cfg,
		Now:            sh.eng.Now(),
		Seed:           sh.seed,
		Log:            logCopy,
		Batch:          toPendingCmds(sh.batch),
		DeferredJoins:  toPendingCmds(sh.defJoins),
		DeferredLeaves: append([]string(nil), sh.defLeaves...),
		Admission:      sh.adm.state(),
		Digest:         sh.eng.StateDigest(),
	}
}

// A Tail is the replication wire unit: everything that changed on a
// shard since log index From, plus the full admitted-but-unapplied
// state (which is small and rides whole on every tail). A Tail with
// From == 0 is a complete snapshot of the shard; a follower that holds
// log[0:From) and applies Commands ends up with the primary's full log.
// Digest and Now certify the engine state after the last carried
// command — the follower's periodic digest exchange compares against
// them after stepping its replica to Now.
type Tail struct {
	Shard  int          `json:"shard"`
	Config ShardConfig  `json:"config"`
	Seed   model.System `json:"seed"`
	From   int          `json:"from"`
	// Total is the primary's full log length after Commands; a follower
	// whose own log does not reach From answers with the index it wants.
	Total    int            `json:"total"`
	Now      int64          `json:"now"`
	Digest   uint64         `json:"digest"`
	Commands []core.Command `json:"commands,omitempty"`

	Batch          []pendingCmd   `json:"batch,omitempty"`
	DeferredJoins  []pendingCmd   `json:"deferred_joins,omitempty"`
	DeferredLeaves []string       `json:"deferred_leaves,omitempty"`
	Admission      admissionState `json:"admission"`
}

// buildTail serializes the shard's state from log index `from` on.
// Run-goroutine only (or after the loop has exited).
//
//lint:allocok tails copy the log suffix and pending sets by design; replication traffic, not the per-slot path
func (sh *Shard) buildTail(from int) (*Tail, error) {
	if from < 0 || from > len(sh.log) {
		return nil, fmt.Errorf("serve: shard %d tail from %d outside [0,%d]", sh.id, from, len(sh.log))
	}
	cmds := make([]core.Command, len(sh.log)-from)
	copy(cmds, sh.log[from:])
	return &Tail{
		Shard:          sh.id,
		Config:         sh.cfg,
		Seed:           sh.seed,
		From:           from,
		Total:          len(sh.log),
		Now:            sh.eng.Now(),
		Digest:         sh.eng.StateDigest(),
		Commands:       cmds,
		Batch:          toPendingCmds(sh.batch),
		DeferredJoins:  toPendingCmds(sh.defJoins),
		DeferredLeaves: append([]string(nil), sh.defLeaves...),
		Admission:      sh.adm.state(),
	}, nil
}

// BuildSnapshot assembles a full shard snapshot from this tail and the
// log prefix the receiver already holds (len(prefix) must equal From).
// It is how a promoted follower or a migration receiver turns its
// replicated state back into something restoreShard (and therefore
// Server.InstallShard) accepts — the restore replays the combined log
// and verifies Digest, so a corrupt hand-off cannot be installed.
func (t *Tail) BuildSnapshot(prefix []core.Command) (*Snapshot, error) {
	if len(prefix) != t.From {
		return nil, fmt.Errorf("serve: tail for shard %d starts at %d but prefix holds %d commands",
			t.Shard, t.From, len(prefix))
	}
	log := make([]core.Command, 0, len(prefix)+len(t.Commands))
	log = append(log, prefix...)
	log = append(log, t.Commands...)
	return &Snapshot{
		Version:        snapshotVersion,
		Shard:          t.Shard,
		Config:         t.Config,
		Now:            t.Now,
		Seed:           t.Seed,
		Log:            log,
		Batch:          t.Batch,
		DeferredJoins:  t.DeferredJoins,
		DeferredLeaves: t.DeferredLeaves,
		Admission:      t.Admission,
		Digest:         t.Digest,
	}, nil
}

// VerifyTail replays a complete tail (From == 0) on a fresh engine and
// reports whether the replayed digest matches the tail's. It is the
// cluster-level differential check: a primary's full tail must replay
// byte-identically through core.Replay alone.
func VerifyTail(t *Tail) (uint64, error) {
	if t.From != 0 {
		return 0, fmt.Errorf("serve: verify needs a complete tail, got from=%d", t.From)
	}
	ccfg, err := t.Config.coreConfig()
	if err != nil {
		return 0, err
	}
	eng, err := core.Replay(ccfg, t.Seed, t.Commands, t.Now)
	if err != nil {
		return 0, err
	}
	return eng.StateDigest(), nil
}

// restoreShard rebuilds a stopped shard from a snapshot: replay the log
// over the seed to the recorded clock, verify the engine digest, then
// reinstate the admission books and the pending queues. The returned
// shard is not started.
func restoreShard(snap *Snapshot, mailboxCap int) (*Shard, error) {
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("serve: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	ccfg, err := snap.Config.coreConfig()
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d snapshot: %w", snap.Shard, err)
	}
	eng, err := core.Replay(ccfg, snap.Seed, snap.Log, snap.Now)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d restore replay: %w", snap.Shard, err)
	}
	if got := eng.StateDigest(); got != snap.Digest {
		return nil, fmt.Errorf("serve: shard %d restore digest mismatch: replayed %016x, snapshot %016x",
			snap.Shard, got, snap.Digest)
	}
	batch, err := fromPendingCmds(snap.Batch)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d snapshot batch: %w", snap.Shard, err)
	}
	defJoins, err := fromPendingCmds(snap.DeferredJoins)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d snapshot joins: %w", snap.Shard, err)
	}
	if mailboxCap < 1 {
		mailboxCap = 1
	}
	adm := newAdmission(snap.Config.M)
	adm.restore(snap.Admission)
	sh := &Shard{
		id:        snap.Shard,
		cfg:       snap.Config,
		mbox:      make(chan *pending, mailboxCap),
		tickc:     make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		eng:       eng,
		adm:       adm,
		seed:      snap.Seed,
		log:       append([]core.Command(nil), snap.Log...),
		batch:     batch,
		defJoins:  defJoins,
		defLeaves: append([]string(nil), snap.DeferredLeaves...),
		drain:     make([]*pending, 0, mailboxCap+1),
	}
	sh.publishStatus()
	return sh, nil
}
