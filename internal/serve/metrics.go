package serve

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
)

// counters is the shard's lock-free observability surface: monotone
// atomics bumped by whichever side owns the event (the shard loop for
// engine-side events, handlers for backpressure) plus a gauge snapshot
// republished by the shard loop at every slot boundary. The /metrics
// handler reads these without touching the mailbox, so scraping never
// competes with traffic for the single writer.
type counters struct {
	accepted      atomic.Int64 // commands admitted (property (W) passed)
	rejectedW     atomic.Int64 // 409s carrying weight headroom
	rejectedOther atomic.Int64 // 404/409 conflicts and unknowns
	backpressured atomic.Int64 // 429s from a full mailbox
	applied       atomic.Int64 // commands applied to the engine
	deferred      atomic.Int64 // boundary deferrals (rules L / J)
	failedApplies atomic.Int64 // engine refusals of admitted commands (must stay 0)
	advances      atomic.Int64 // slots stepped
	queries       atomic.Int64 // status queries served

	// Anomaly counters: slot-boundary windows in which the shard was
	// observably degrading. They quantify *graceful* degradation — the
	// pathological-workload tests assert these fire while failedApplies
	// stays zero. Bumped by the shard loop (noteAnomalies) except for
	// deferred-join peak, which flush maintains.
	anomRejectSpikes atomic.Int64 // windows whose rejection rate spiked (see anomalyMinDecisions)
	anomDriftExcur   atomic.Int64 // boundaries where a task's |drift| exceeded the configured bound
	anomBackpressure atomic.Int64 // windows with fresh 429 backpressure
	deferredJoinPeak atomic.Int64 // high-watermark of the condition-J join queue

	gauge atomic.Pointer[ShardStatus]
}

// fill copies the counter values into a wire status.
func (c *counters) fill(st *ShardStatus) {
	st.Accepted = c.accepted.Load()
	st.RejectedW = c.rejectedW.Load()
	st.RejectedOther = c.rejectedOther.Load()
	st.Backpressured = c.backpressured.Load()
	st.Applied = c.applied.Load()
	st.Deferred = c.deferred.Load()
	st.FailedApplies = c.failedApplies.Load()
	st.Advances = c.advances.Load()
	st.Queries = c.queries.Load()
	st.AnomalyRejectSpikes = c.anomRejectSpikes.Load()
	st.AnomalyDriftExcursions = c.anomDriftExcur.Load()
	st.AnomalyBackpressureSpikes = c.anomBackpressure.Load()
	st.DeferredJoinPeak = c.deferredJoinPeak.Load()
}

// writeMetrics renders all shards in the Prometheus text exposition
// format (counters as *_total, gauges bare). Shards print in index
// order, so the output is stable.
func writeMetrics(w io.Writer, shards []*Shard) error {
	var b strings.Builder
	for _, sh := range shards {
		c := &sh.ctr
		id := sh.id
		for _, kv := range []struct {
			name string
			v    int64
		}{
			{"pd2d_commands_accepted_total", c.accepted.Load()},
			{"pd2d_commands_rejected_weight_total", c.rejectedW.Load()},
			{"pd2d_commands_rejected_other_total", c.rejectedOther.Load()},
			{"pd2d_commands_backpressured_total", c.backpressured.Load()},
			{"pd2d_commands_applied_total", c.applied.Load()},
			{"pd2d_commands_deferred_total", c.deferred.Load()},
			{"pd2d_commands_failed_applies_total", c.failedApplies.Load()},
			{"pd2d_slots_advanced_total", c.advances.Load()},
			{"pd2d_queries_total", c.queries.Load()},
			{"pd2d_anomaly_reject_spikes_total", c.anomRejectSpikes.Load()},
			{"pd2d_anomaly_drift_excursions_total", c.anomDriftExcur.Load()},
			{"pd2d_anomaly_backpressure_spikes_total", c.anomBackpressure.Load()},
		} {
			fmt.Fprintf(&b, "%s{shard=\"%d\"} %d\n", kv.name, id, kv.v)
		}
		fmt.Fprintf(&b, "pd2d_anomaly_deferred_join_peak{shard=\"%d\"} %d\n", id, c.deferredJoinPeak.Load())
		st := c.gauge.Load()
		if st == nil {
			continue
		}
		fmt.Fprintf(&b, "pd2d_shard_now{shard=\"%d\"} %d\n", id, st.Now)
		fmt.Fprintf(&b, "pd2d_shard_active_tasks{shard=\"%d\"} %d\n", id, st.ActiveTasks)
		fmt.Fprintf(&b, "pd2d_shard_misses{shard=\"%d\"} %d\n", id, st.Misses)
		fmt.Fprintf(&b, "pd2d_shard_holes{shard=\"%d\"} %d\n", id, st.Holes)
		fmt.Fprintf(&b, "pd2d_shard_overhead_slots{shard=\"%d\"} %d\n", id, st.OverheadSlots)
		fmt.Fprintf(&b, "pd2d_shard_violations{shard=\"%d\"} %d\n", id, st.Violations)
		fmt.Fprintf(&b, "pd2d_shard_deferred_joins{shard=\"%d\"} %d\n", id, st.DeferredJoins)
		fmt.Fprintf(&b, "pd2d_shard_deferred_leaves{shard=\"%d\"} %d\n", id, st.DeferredLeaves)
		fmt.Fprintf(&b, "pd2d_shard_total_sched_weight{shard=\"%d\"} %g\n", id, st.TotalSchedWtFloat)
		fmt.Fprintf(&b, "pd2d_shard_max_abs_drift{shard=\"%d\"} %g\n", id, st.MaxAbsDriftFloat)
		fmt.Fprintf(&b, "pd2d_shard_sum_abs_lag{shard=\"%d\"} %g\n", id, st.SumAbsLagFloat)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
