package serve

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
)

// counters is the shard's lock-free observability surface: monotone
// atomics bumped by whichever side owns the event (the shard loop for
// engine-side events, handlers for backpressure) plus a gauge snapshot
// republished by the shard loop at every slot boundary. The /metrics
// handler reads these without touching the mailbox, so scraping never
// competes with traffic for the single writer.
type counters struct {
	accepted      atomic.Int64 // commands admitted (property (W) passed)
	rejectedW     atomic.Int64 // 409s carrying weight headroom
	rejectedOther atomic.Int64 // 404/409 conflicts and unknowns
	backpressured atomic.Int64 // 429s from a full mailbox
	applied       atomic.Int64 // commands applied to the engine
	deferred      atomic.Int64 // boundary deferrals (rules L / J)
	failedApplies atomic.Int64 // engine refusals of admitted commands (must stay 0)
	advances      atomic.Int64 // slots stepped
	queries       atomic.Int64 // status queries served

	// Anomaly counters: slot-boundary windows in which the shard was
	// observably degrading. They quantify *graceful* degradation — the
	// pathological-workload tests assert these fire while failedApplies
	// stays zero. Bumped by the shard loop (noteAnomalies) except for
	// deferred-join peak, which flush maintains.
	anomRejectSpikes atomic.Int64 // windows whose rejection rate spiked (see anomalyMinDecisions)
	anomDriftExcur   atomic.Int64 // boundaries where a task's |drift| exceeded the configured bound
	anomBackpressure atomic.Int64 // windows with fresh 429 backpressure
	deferredJoinPeak atomic.Int64 // high-watermark of the condition-J join queue

	gauge atomic.Pointer[ShardStatus]
}

// fill copies the counter values into a wire status.
func (c *counters) fill(st *ShardStatus) {
	st.Accepted = c.accepted.Load()
	st.RejectedW = c.rejectedW.Load()
	st.RejectedOther = c.rejectedOther.Load()
	st.Backpressured = c.backpressured.Load()
	st.Applied = c.applied.Load()
	st.Deferred = c.deferred.Load()
	st.FailedApplies = c.failedApplies.Load()
	st.Advances = c.advances.Load()
	st.Queries = c.queries.Load()
	st.AnomalyRejectSpikes = c.anomRejectSpikes.Load()
	st.AnomalyDriftExcursions = c.anomDriftExcur.Load()
	st.AnomalyBackpressureSpikes = c.anomBackpressure.Load()
	st.DeferredJoinPeak = c.deferredJoinPeak.Load()
}

// Cluster role codes published on pd2d_cluster_role{shard}: 0 when the
// node does not host the shard, 1 when it follows, 2 when it is the
// primary. The JSON status carries the same fact as a string.
const (
	RoleNone int32 = iota
	RoleFollower
	RolePrimary
)

// RoleName renders a role code for the JSON status.
func RoleName(code int32) string {
	switch code {
	case RoleFollower:
		return "follower"
	case RolePrimary:
		return "primary"
	}
	return "none"
}

// ClusterStats is the per-node cluster observability surface the
// cluster layer feeds and /metrics + the shard status JSON read:
// per-shard role and replication lag gauges plus node-wide migration
// counters. All fields are atomics — the writers are the cluster
// node's reconcile/replication goroutines, the readers are handlers.
type ClusterStats struct {
	roles          []atomic.Int32 // RoleNone / RoleFollower / RolePrimary per shard
	replLag        []atomic.Int64 // slots the furthest-behind replica trails by
	migrationsOK   atomic.Int64
	migrationsFail atomic.Int64
}

// NewClusterStats sizes the gauges for a node hosting `shards` slots.
func NewClusterStats(shards int) *ClusterStats {
	return &ClusterStats{
		roles:   make([]atomic.Int32, shards),
		replLag: make([]atomic.Int64, shards),
	}
}

// SetRole publishes the node's role for a shard.
func (cs *ClusterStats) SetRole(shard int, role int32) {
	if shard >= 0 && shard < len(cs.roles) {
		cs.roles[shard].Store(role)
	}
}

// SetReplLag publishes the replication lag, in slots, for a shard: on a
// primary the furthest-behind live follower, on a follower its own lag
// behind the last pushed tail.
func (cs *ClusterStats) SetReplLag(shard int, slots int64) {
	if shard >= 0 && shard < len(cs.replLag) {
		cs.replLag[shard].Store(slots)
	}
}

// MigrationDone counts one finished migration attempt on this node.
func (cs *ClusterStats) MigrationDone(ok bool) {
	if ok {
		cs.migrationsOK.Add(1)
	} else {
		cs.migrationsFail.Add(1)
	}
}

// Migrations returns the (ok, failed) migration counts.
func (cs *ClusterStats) Migrations() (int64, int64) {
	return cs.migrationsOK.Load(), cs.migrationsFail.Load()
}

// fillStatus copies the cluster gauges for one shard into its status
// reply (the anomaly-counter JSON surface).
func (cs *ClusterStats) fillStatus(shard int, st *ShardStatus) {
	if st == nil || shard < 0 || shard >= len(cs.roles) {
		return
	}
	st.ClusterRole = RoleName(cs.roles[shard].Load())
	st.ReplLagSlots = cs.replLag[shard].Load()
	st.MigrationsOK = cs.migrationsOK.Load()
	st.MigrationsFailed = cs.migrationsFail.Load()
}

// writeMetrics renders all shards in the Prometheus text exposition
// format (counters as *_total, gauges bare). Shards print in index
// order, so the output is stable. cs adds the per-node cluster gauges
// when the cluster layer is attached (nil otherwise).
func writeMetrics(w io.Writer, shards []*Shard, cs *ClusterStats) error {
	var b strings.Builder
	for _, sh := range shards {
		c := &sh.ctr
		id := sh.id
		for _, kv := range []struct {
			name string
			v    int64
		}{
			{"pd2d_commands_accepted_total", c.accepted.Load()},
			{"pd2d_commands_rejected_weight_total", c.rejectedW.Load()},
			{"pd2d_commands_rejected_other_total", c.rejectedOther.Load()},
			{"pd2d_commands_backpressured_total", c.backpressured.Load()},
			{"pd2d_commands_applied_total", c.applied.Load()},
			{"pd2d_commands_deferred_total", c.deferred.Load()},
			{"pd2d_commands_failed_applies_total", c.failedApplies.Load()},
			{"pd2d_slots_advanced_total", c.advances.Load()},
			{"pd2d_queries_total", c.queries.Load()},
			{"pd2d_anomaly_reject_spikes_total", c.anomRejectSpikes.Load()},
			{"pd2d_anomaly_drift_excursions_total", c.anomDriftExcur.Load()},
			{"pd2d_anomaly_backpressure_spikes_total", c.anomBackpressure.Load()},
		} {
			fmt.Fprintf(&b, "%s{shard=\"%d\"} %d\n", kv.name, id, kv.v)
		}
		fmt.Fprintf(&b, "pd2d_anomaly_deferred_join_peak{shard=\"%d\"} %d\n", id, c.deferredJoinPeak.Load())
		st := c.gauge.Load()
		if st == nil {
			continue
		}
		fmt.Fprintf(&b, "pd2d_shard_now{shard=\"%d\"} %d\n", id, st.Now)
		fmt.Fprintf(&b, "pd2d_shard_active_tasks{shard=\"%d\"} %d\n", id, st.ActiveTasks)
		fmt.Fprintf(&b, "pd2d_shard_misses{shard=\"%d\"} %d\n", id, st.Misses)
		fmt.Fprintf(&b, "pd2d_shard_holes{shard=\"%d\"} %d\n", id, st.Holes)
		fmt.Fprintf(&b, "pd2d_shard_overhead_slots{shard=\"%d\"} %d\n", id, st.OverheadSlots)
		fmt.Fprintf(&b, "pd2d_shard_violations{shard=\"%d\"} %d\n", id, st.Violations)
		fmt.Fprintf(&b, "pd2d_shard_deferred_joins{shard=\"%d\"} %d\n", id, st.DeferredJoins)
		fmt.Fprintf(&b, "pd2d_shard_deferred_leaves{shard=\"%d\"} %d\n", id, st.DeferredLeaves)
		fmt.Fprintf(&b, "pd2d_shard_total_sched_weight{shard=\"%d\"} %g\n", id, st.TotalSchedWtFloat)
		fmt.Fprintf(&b, "pd2d_shard_max_abs_drift{shard=\"%d\"} %g\n", id, st.MaxAbsDriftFloat)
		fmt.Fprintf(&b, "pd2d_shard_sum_abs_lag{shard=\"%d\"} %g\n", id, st.SumAbsLagFloat)
	}
	if cs != nil {
		for i := range cs.roles {
			fmt.Fprintf(&b, "pd2d_cluster_role{shard=\"%d\"} %d\n", i, cs.roles[i].Load())
		}
		for i := range cs.replLag {
			fmt.Fprintf(&b, "pd2d_repl_lag_slots{shard=\"%d\"} %d\n", i, cs.replLag[i].Load())
		}
		fmt.Fprintf(&b, "pd2d_migrations_total{result=\"ok\"} %d\n", cs.migrationsOK.Load())
		fmt.Fprintf(&b, "pd2d_migrations_total{result=\"fail\"} %d\n", cs.migrationsFail.Load())
	}
	_, err := io.WriteString(w, b.String())
	return err
}
