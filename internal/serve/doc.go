// Package serve hosts the PD² reweighting engine as a sharded online
// service. It is the serving discipline around internal/core: many
// independent engine shards, each owned by a single-writer goroutine
// that consumes a bounded mailbox of requests, batches same-slot
// mutations, and applies them atomically at the next slot boundary.
//
// The design follows three rules that keep the batch engine's formal
// guarantees intact under concurrent traffic:
//
//   - Single writer. A shard's *core.Scheduler is touched by exactly one
//     goroutine (the shard loop). HTTP handlers never reach the engine;
//     they park a request in the shard's mailbox and wait for the reply.
//     Reads (status, state dumps, snapshots) flow through the same
//     mailbox, so they observe slot-boundary-consistent state.
//
//   - Admission before mutation. Property (W) — the sum of admitted task
//     weights may not exceed the processor count M — is enforced at the
//     mailbox, not discovered in the engine. A join or reweight that
//     would break (W) is rejected with the exact rational headroom left;
//     an admitted command is guaranteed to apply (leaves blocked by rule
//     L and joins blocked by condition J are deferred and retried at
//     each boundary, never dropped). The shard's failed-apply counter
//     stays zero by construction; tests assert it.
//
//   - Bounded queues. The mailbox is a fixed-capacity channel. When it
//     is full the handler answers 429 with Retry-After instead of
//     queueing unboundedly — backpressure is explicit and lossless.
//
// Snapshot/restore rides on the engine's determinism: a shard is fully
// described by its seed system plus the log of commands actually
// applied (core.Replay). A Snapshot additionally carries the admission
// books and the not-yet-applied pending commands so a restored shard
// resumes mid-stream without losing admitted work; the engine-state
// digest recorded at snapshot time is re-verified after replay.
//
// The package is deliberately deterministic (no wall clock, no global
// randomness — enforced by pd2lint): time advances only by explicit
// advance requests or by ticks injected from outside (cmd/pd2d owns the
// wall-clock ticker). docs/SERVE.md documents the wire format.
package serve
