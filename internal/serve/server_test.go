package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Stop()
	})
	return srv, ts
}

func TestCommandEndpointCodes(t *testing.T) {
	_, ts := testServer(t, Options{Shards: 1, Config: ShardConfig{M: 1}})
	url := ts.URL + "/v1/shards/0/commands"

	code, body := postJSON(t, url, CommandRequest{Op: "join", Task: "A", Weight: "1/2"})
	if code != http.StatusOK || !strings.Contains(string(body), `"queued"`) {
		t.Fatalf("join: %d: %s", code, body)
	}
	// Property (W): headroom is 1/2, a 1/2 join fits exactly...
	code, body = postJSON(t, url, CommandRequest{Op: "join", Task: "B", Weight: "1/2"})
	if code != http.StatusOK {
		t.Fatalf("exact-fit join: %d: %s", code, body)
	}
	// ...and the next one is rejected with zero headroom attached.
	code, body = postJSON(t, url, CommandRequest{Op: "join", Task: "C", Weight: "1/4"})
	if code != http.StatusConflict {
		t.Fatalf("over-capacity join: %d: %s", code, body)
	}
	var res CommandResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Error != errWeight || res.Headroom != "0" {
		t.Fatalf("weight rejection: %+v", res)
	}
	// Duplicate name.
	if code, _ = postJSON(t, url, CommandRequest{Op: "join", Task: "A", Weight: "1/8"}); code != http.StatusConflict {
		t.Fatalf("duplicate join: %d", code)
	}
	// Unknown task.
	if code, _ = postJSON(t, url, CommandRequest{Op: "reweight", Task: "zz", Weight: "1/8"}); code != http.StatusNotFound {
		t.Fatalf("unknown reweight: %d", code)
	}
	// Malformed: bad op, heavy weight, missing weight, bad rational.
	for _, bad := range []CommandRequest{
		{Op: "detach", Task: "A"},
		{Op: "join", Task: "H", Weight: "3/4"},
		{Op: "join", Task: "H"},
		{Op: "join", Task: "H", Weight: "x/y"},
		{Op: "join", Weight: "1/8"},
	} {
		if code, body = postJSON(t, url, bad); code != http.StatusBadRequest {
			t.Fatalf("bad request %+v: %d: %s", bad, code, body)
		}
	}
	// Unknown shard.
	if code, _ = postJSON(t, ts.URL+"/v1/shards/9/commands", CommandRequest{Op: "leave", Task: "A"}); code != http.StatusNotFound {
		t.Fatalf("unknown shard: %d", code)
	}
	// Wrong method.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on commands: %d", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{Shards: 1, Config: ShardConfig{M: 2}})
	url := ts.URL + "/v1/shards/0/commands"
	code, body := postJSON(t, url, []CommandRequest{
		{Op: "join", Task: "A", Weight: "1/4"},
		{Op: "join", Task: "A", Weight: "1/4"}, // dup inside the same batch
		{Op: "join", Task: "B", Weight: "1/4"},
	})
	if code != http.StatusOK {
		t.Fatalf("batch: %d: %s", code, body)
	}
	var results []CommandResult
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Status != "queued" || results[1].Status != "rejected" || results[2].Status != "queued" {
		t.Fatalf("batch results: %+v", results)
	}
	// A batch with a malformed entry is rejected whole, before admission.
	code, _ = postJSON(t, url, []CommandRequest{
		{Op: "join", Task: "C", Weight: "1/4"},
		{Op: "frobnicate", Task: "C"},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("malformed batch: %d", code)
	}
	// C must not have been admitted by the rejected batch.
	code, _ = postJSON(t, url, CommandRequest{Op: "join", Task: "C", Weight: "1/4"})
	if code != http.StatusOK {
		t.Fatalf("C was admitted by a rejected batch: %d", code)
	}
}

func TestBackpressure429(t *testing.T) {
	srv, err := New(Options{Shards: 1, Config: ShardConfig{M: 1}, MailboxCap: 2, RetryAfterSeconds: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Shards deliberately not started: fill the mailbox by hand.
	sh := srv.shardAt(0)
	for i := 0; i < 2; i++ {
		p := sh.pool.newPending()
		p.kind = pendQuery
		if !sh.submit(p) {
			t.Fatalf("fill submit %d failed", i)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	data := strings.NewReader(`{"op":"join","task":"A","weight":"1/4"}`)
	resp, err := http.Post(ts.URL+"/v1/shards/0/commands", "application/json", data)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full mailbox: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want 3", got)
	}
	if !strings.Contains(string(body), errFull) {
		t.Fatalf("429 body: %s", body)
	}
	if sh.ctr.backpressured.Load() != 1 {
		t.Fatalf("backpressured counter = %d", sh.ctr.backpressured.Load())
	}
}

func TestStoppedServerAnswers503(t *testing.T) {
	srv, err := New(Options{Shards: 1, Config: ShardConfig{M: 1}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Stop()
	code, body := postJSON(t, ts.URL+"/v1/shards/0/commands", CommandRequest{Op: "join", Task: "A", Weight: "1/4"})
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), errDraining) {
		t.Fatalf("post after stop: %d: %s", code, body)
	}
}

func TestAdvanceQueryMetricsEndpoints(t *testing.T) {
	_, ts := testServer(t, Options{Shards: 2, Config: ShardConfig{M: 2}})
	if code, body := postJSON(t, ts.URL+"/v1/shards/1/commands", CommandRequest{Op: "join", Task: "A", Weight: "1/4"}); code != http.StatusOK {
		t.Fatalf("join: %d: %s", code, body)
	}
	var adv AdvanceResponse
	code, body := postJSON(t, ts.URL+"/v1/shards/1/advance", AdvanceRequest{Slots: 5})
	if code != http.StatusOK {
		t.Fatalf("advance: %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &adv); err != nil {
		t.Fatal(err)
	}
	if adv.Now != 5 {
		t.Fatalf("now = %d, want 5", adv.Now)
	}
	var st ShardStatus
	getJSON(t, ts.URL+"/v1/shards/1?tasks=1", &st)
	if st.Now != 5 || st.ActiveTasks != 1 || len(st.Tasks) != 1 {
		t.Fatalf("status: %+v", st)
	}
	if st.Tasks[0].Name != "A" || !st.Tasks[0].Active {
		t.Fatalf("task row: %+v", st.Tasks[0])
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`pd2d_commands_accepted_total{shard="1"} 1`,
		`pd2d_slots_advanced_total{shard="1"} 5`,
		`pd2d_shard_now{shard="1"} 5`,
		`pd2d_shard_active_tasks{shard="1"} 1`,
		`pd2d_commands_accepted_total{shard="0"} 0`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	for _, path := range []string{"/healthz", "/debug/pprof/", "/v1/shards"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}
}

// TestBodyTooLarge413: a body over the endpoint's MaxBytesReader limit
// must come back as 413 with the errTooLarge wire kind, not a generic
// decode failure.
func TestBodyTooLarge413(t *testing.T) {
	_, ts := testServer(t, Options{Shards: 1, Config: ShardConfig{M: 1}})
	cases := []struct {
		name, path string
		size       int
	}{
		{"commands", "/v1/shards/0/commands", 1<<20 + 1},
		{"advance", "/v1/shards/0/advance", 1<<16 + 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := strings.NewReader(`{"x":"` + strings.Repeat("a", tc.size) + `"}`)
			resp, err := http.Post(ts.URL+tc.path, "application/json", body)
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("oversized body: %d: %s", resp.StatusCode, data)
			}
			var res ErrorResponse
			if err := json.Unmarshal(data, &res); err != nil {
				t.Fatalf("413 body not an ErrorResponse: %v: %s", err, data)
			}
			if res.Error != errTooLarge || !strings.Contains(res.Reason, "byte limit") {
				t.Fatalf("413 payload: %+v", res)
			}
		})
	}
	// One byte under the limit is decoded normally (400 here: unknown
	// field body is fine, but "x" isn't a command, so op is missing).
	body := strings.NewReader(`{"x":"` + strings.Repeat("a", 1<<16) + `"}`)
	resp, err := http.Post(ts.URL+"/v1/shards/0/commands", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("in-limit body: %d, want 400", resp.StatusCode)
	}
}

// TestStatusContract pins the asymmetry between the two POST shapes: a
// single command propagates its result code as the HTTP status, while a
// batch always answers 200 and carries per-command codes in the body.
func TestStatusContract(t *testing.T) {
	cases := []struct {
		name       string
		setup      []CommandRequest // admitted first, must all queue
		cmd        CommandRequest
		singleCode int // HTTP status for the single-POST shape
		resCode    int // CommandResult.Code inside a batch (0 = queued)
	}{
		{
			name:       "queued join",
			cmd:        CommandRequest{Op: "join", Task: "A", Weight: "1/4"},
			singleCode: http.StatusOK,
			resCode:    0,
		},
		{
			name:       "duplicate join",
			setup:      []CommandRequest{{Op: "join", Task: "A", Weight: "1/4"}},
			cmd:        CommandRequest{Op: "join", Task: "A", Weight: "1/4"},
			singleCode: http.StatusConflict,
			resCode:    http.StatusConflict,
		},
		{
			name:       "property-W rejection",
			setup:      []CommandRequest{{Op: "join", Task: "A", Weight: "1/2"}, {Op: "join", Task: "B", Weight: "1/2"}},
			cmd:        CommandRequest{Op: "join", Task: "C", Weight: "1/4"},
			singleCode: http.StatusConflict,
			resCode:    http.StatusConflict,
		},
		{
			name:       "unknown task reweight",
			cmd:        CommandRequest{Op: "reweight", Task: "ghost", Weight: "1/8"},
			singleCode: http.StatusNotFound,
			resCode:    http.StatusNotFound,
		},
		{
			name:       "unknown task leave",
			cmd:        CommandRequest{Op: "leave", Task: "ghost"},
			singleCode: http.StatusNotFound,
			resCode:    http.StatusNotFound,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, shape := range []string{"single", "batch"} {
				_, ts := testServer(t, Options{Shards: 1, Config: ShardConfig{M: 1}})
				url := ts.URL + "/v1/shards/0/commands"
				for _, s := range tc.setup {
					if code, body := postJSON(t, url, s); code != http.StatusOK {
						t.Fatalf("setup %+v: %d: %s", s, code, body)
					}
				}
				if shape == "single" {
					code, body := postJSON(t, url, tc.cmd)
					if code != tc.singleCode {
						t.Fatalf("single POST: %d, want %d: %s", code, tc.singleCode, body)
					}
					continue
				}
				code, body := postJSON(t, url, []CommandRequest{tc.cmd})
				if code != http.StatusOK {
					t.Fatalf("batch POST: %d, want 200: %s", code, body)
				}
				var results []CommandResult
				if err := json.Unmarshal(body, &results); err != nil {
					t.Fatal(err)
				}
				if len(results) != 1 || results[0].Code != tc.resCode {
					t.Fatalf("batch results: %+v, want code %d", results, tc.resCode)
				}
			}
		})
	}
}

func TestTickerAdvancesShard(t *testing.T) {
	srv, ts := testServer(t, Options{Shards: 1, Config: ShardConfig{M: 1}})
	select {
	case srv.ShardTick(0) <- struct{}{}:
	case <-time.After(time.Second):
		t.Fatal("tick channel never accepted")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		var st ShardStatus
		getJSON(t, ts.URL+"/v1/shards/0", &st)
		if st.Now >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard clock still at %d after tick", st.Now)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
