package serve

import (
	"fmt"

	"repro/internal/frac"
	"repro/internal/model"
)

// Wire types for the JSON protocol. docs/SERVE.md is the normative
// description; keep the two in sync.

// CommandRequest is one mutation submitted to a shard. Op is one of
// "join", "leave", "reweight". Weight is a rational in "p/q" (or
// integer "n") form; it is required for join and reweight and ignored
// for leave. Group optionally tags a joining task for tie-breaking.
type CommandRequest struct {
	Op     string `json:"op"`
	Task   string `json:"task"`
	Weight string `json:"weight,omitempty"`
	Group  string `json:"group,omitempty"`
}

// CommandResult is the per-command outcome. Status is "queued" or
// "rejected". A queued command is admitted and will be applied at the
// boundary of slot Slot or later (leaves and joins may be deferred by
// rules L/J but are never dropped). A rejected command reports the
// admission error; weight rejections carry the remaining headroom so
// clients can re-plan without polling.
type CommandResult struct {
	Status string `json:"status"`
	Slot   int64  `json:"slot,omitempty"`
	Code   int    `json:"code,omitempty"`
	Error  string `json:"error,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Headroom is M minus the admitted total weight, as an exact
	// rational string. Present on property-(W) rejections.
	Headroom string `json:"headroom,omitempty"`
}

// AdvanceRequest asks a shard to advance its virtual clock. Slots
// defaults to 1.
type AdvanceRequest struct {
	Slots int64 `json:"slots,omitempty"`
}

// AdvanceResponse reports the clock after the advance.
type AdvanceResponse struct {
	Now int64 `json:"now"`
}

// TaskStatus is one task's accounting in a ShardStatus reply. Exact
// rationals are rendered as strings; drift and lag additionally as
// floats for dashboards (serve is a designated reporting boundary).
type TaskStatus struct {
	Name        string  `json:"name"`
	Weight      string  `json:"weight"`
	SchedWeight string  `json:"sched_weight"`
	Active      bool    `json:"active"`
	Scheduled   int64   `json:"scheduled"`
	Drift       string  `json:"drift"`
	DriftFloat  float64 `json:"drift_float"`
	MaxAbsDrift string  `json:"max_abs_drift"`
	Lag         string  `json:"lag"`
	LagFloat    float64 `json:"lag_float"`
	Misses      int64   `json:"misses"`
}

// ShardStatus is the query reply for one shard: the engine clock and
// counters at the last slot boundary plus the admission books.
type ShardStatus struct {
	Shard        int    `json:"shard"`
	Now          int64  `json:"now"`
	Policy       string `json:"policy"`
	M            int    `json:"m"`
	ActiveTasks  int    `json:"active_tasks"`
	TotalSchedWt string `json:"total_sched_weight"`
	RequestedWt  string `json:"requested_weight"`
	Headroom     string `json:"headroom"`
	// Float mirror of TotalSchedWt for the /metrics gauge.
	TotalSchedWtFloat float64 `json:"total_sched_weight_float"`
	Misses            int64   `json:"misses"`
	Holes             int64   `json:"holes"`
	OverheadSlots     int64   `json:"overhead_slots"`
	// MaxAbsDrift is the largest |drift| any task has reached; SumAbsLag
	// sums |lag| over active tasks. Exact strings plus float mirrors
	// (serve is a reporting boundary; the floats feed /metrics).
	MaxAbsDrift      string  `json:"max_abs_drift"`
	MaxAbsDriftFloat float64 `json:"max_abs_drift_float"`
	SumAbsLag        string  `json:"sum_abs_lag"`
	SumAbsLagFloat   float64 `json:"sum_abs_lag_float"`
	Violations       int     `json:"violations"`
	PendingBatch     int     `json:"pending_batch"`
	DeferredJoins    int     `json:"deferred_joins"`
	DeferredLeaves   int     `json:"deferred_leaves"`

	Accepted      int64 `json:"accepted"`
	RejectedW     int64 `json:"rejected_weight"`
	RejectedOther int64 `json:"rejected_other"`
	Backpressured int64 `json:"backpressured"`
	Applied       int64 `json:"applied"`
	Deferred      int64 `json:"deferred"`
	FailedApplies int64 `json:"failed_applies"`
	Advances      int64 `json:"advances"`
	Queries       int64 `json:"queries"`

	// Anomaly counters (see metrics.go): windows of observable
	// degradation. Graceful degradation means these may rise while
	// FailedApplies and Violations stay zero.
	AnomalyRejectSpikes       int64 `json:"anomaly_reject_spikes"`
	AnomalyDriftExcursions    int64 `json:"anomaly_drift_excursions"`
	AnomalyBackpressureSpikes int64 `json:"anomaly_backpressure_spikes"`
	DeferredJoinPeak          int64 `json:"deferred_join_peak"`

	// Cluster gauges (see ClusterStats): present only when the cluster
	// layer is attached. ClusterRole is this node's role for the shard;
	// the migration counters are node-wide and repeat on every shard.
	ClusterRole      string `json:"cluster_role,omitempty"`
	ReplLagSlots     int64  `json:"repl_lag_slots,omitempty"`
	MigrationsOK     int64  `json:"migrations_ok,omitempty"`
	MigrationsFailed int64  `json:"migrations_failed,omitempty"`

	Tasks []TaskStatus `json:"tasks,omitempty"`
}

// StateResponse carries a shard's canonical engine-state dump
// (core.Scheduler.WriteState) and its FNV-1a digest — the byte-exact
// equality witness differential tests compare against a directly driven
// engine.
type StateResponse struct {
	Shard  int    `json:"shard"`
	Now    int64  `json:"now"`
	Digest uint64 `json:"digest"`
	State  string `json:"state"`
}

// ErrorResponse is the body of non-2xx replies outside per-command
// results (unknown shard, malformed body, mailbox full, draining).
type ErrorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// Admission reason/error vocabulary shared by wire replies and tests.
const (
	errInvalid   = "invalid"      // malformed op, weight, or name (400)
	errUnknown   = "unknown_task" // reweight/leave of a task never joined (404)
	errConflict  = "conflict"     // duplicate name, join still pending, already leaving (409)
	errWeight    = "weight"       // property-(W) violation; headroom attached (409)
	errTooLarge  = "too_large"    // body exceeds the read limit (413)
	errFull      = "mailbox_full" // bounded mailbox at capacity (429)
	errDraining  = "draining"     // shard is shutting down (503)
	errBadShard  = "unknown_shard"
	errBadMethod = "method_not_allowed"
)

// parseCommand validates the wire form and resolves it to an op and an
// exact weight. It performs only stateless checks; stateful admission
// (names, headroom) happens on the shard goroutine.
func parseCommand(req CommandRequest) (op pendingOp, w frac.Rat, err error) {
	switch req.Op {
	case "join":
		op = opJoin
	case "leave":
		op = opLeave
	case "reweight":
		op = opReweight
	default:
		return 0, frac.Rat{}, fmt.Errorf("op %q is not one of join, leave, reweight", req.Op)
	}
	if req.Task == "" {
		return 0, frac.Rat{}, fmt.Errorf("missing task name")
	}
	if op == opLeave {
		return op, frac.Rat{}, nil
	}
	if req.Weight == "" {
		return 0, frac.Rat{}, fmt.Errorf("op %s needs a weight", req.Op)
	}
	w, perr := frac.Parse(req.Weight)
	if perr != nil {
		return 0, frac.Rat{}, fmt.Errorf("weight %q: %v", req.Weight, perr)
	}
	// The AIS reweighting rules cover light tasks only; serve admits
	// nothing it could not later reweight.
	if lerr := model.CheckLightWeight(w); lerr != nil {
		return 0, frac.Rat{}, fmt.Errorf("weight %s: %v", w, lerr)
	}
	return op, w, nil
}
