package serve

import (
	"testing"

	"repro/internal/frac"
	"repro/internal/stats"
	"repro/internal/workgen"
)

// admitTemplate pushes workgen commands through admission on the test
// goroutine, returning how many were queued vs rejected. Rejections are
// tolerated (templates exist to provoke them); a failed apply never is.
func admitTemplate(t *testing.T, sh *Shard, cmds []workgen.Cmd) (queued, rejected int) {
	t.Helper()
	for _, c := range cmds {
		var op pendingOp
		switch c.Op {
		case workgen.TraceJoin:
			op = opJoin
		case workgen.TraceLeave:
			op = opLeave
		case workgen.TraceReweight:
			op = opReweight
		default:
			t.Fatalf("template emitted non-wire op %v", c.Op)
		}
		res := admitOne(sh, op, c.Task, c.Weight)
		switch res.Status {
		case "queued":
			queued++
		case "rejected":
			rejected++
		default:
			t.Fatalf("command %+v: status %q", c, res.Status)
		}
	}
	return queued, rejected
}

func anomalies(sh *Shard) (rejectSpikes, driftExcur, backpressure, joinPeak int64) {
	return sh.ctr.anomRejectSpikes.Load(), sh.ctr.anomDriftExcur.Load(),
		sh.ctr.anomBackpressure.Load(), sh.ctr.deferredJoinPeak.Load()
}

// TestAnomalyCountersCleanRun drives a polite workload and requires
// every anomaly counter to stay zero — the counters must measure
// degradation, not traffic.
func TestAnomalyCountersCleanRun(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 2, DriftBound: frac.New(1, 2)}, 64)
	for _, task := range []string{"A", "B", "C", "D"} {
		if res := admitOne(sh, opJoin, task, frac.New(1, 64)); res.Status != "queued" {
			t.Fatalf("join %s: %+v", task, res)
		}
	}
	sh.advance(1)
	for i := 0; i < 10; i++ {
		w := frac.New(int64(1+i%2), 64)
		for _, task := range []string{"A", "B", "C", "D"} {
			if res := admitOne(sh, opReweight, task, w); res.Status != "queued" {
				t.Fatalf("reweight %s: %+v", task, res)
			}
		}
		sh.advance(1)
	}
	rs, de, bp, jp := anomalies(sh)
	if rs != 0 || de != 0 || bp != 0 || jp != 0 {
		t.Errorf("clean run fired anomalies: rejectSpikes=%d driftExcur=%d backpressure=%d joinPeak=%d", rs, de, bp, jp)
	}
	if sh.ctr.failedApplies.Load() != 0 {
		t.Errorf("failedApplies = %d", sh.ctr.failedApplies.Load())
	}
}

// TestAnomalyRejectSpikeAdmissionCamp camps the shard at M - 1/64 and
// floods fitting-looking joins: every one must bounce with headroom
// attached, the rejection-rate spike counter must fire, and not a
// single apply may fail — the graceful-degradation contract.
func TestAnomalyRejectSpikeAdmissionCamp(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 1}, 64)
	ts, err := workgen.NewTemplateStream(workgen.TemplateAdmissionCamp, stats.NewStream(1, 0), "P", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, r := admitTemplate(t, sh, ts.Setup(nil))
	if r != 0 {
		t.Fatalf("camp setup rejected %d of its own joins", r)
	}
	sh.advance(1)
	ts.Advanced()

	totalRejected := 0
	for round := 0; round < 4; round++ {
		q, r = admitTemplate(t, sh, ts.Next(nil, 16))
		if q != 0 {
			t.Fatalf("round %d: camped shard admitted %d joins", round, q)
		}
		totalRejected += r
		sh.advance(1)
		ts.Advanced()
	}
	if totalRejected != 64 {
		t.Fatalf("rejected %d, want 64", totalRejected)
	}
	rs, _, _, _ := anomalies(sh)
	if rs == 0 {
		t.Error("rejection flood did not fire the reject-spike counter")
	}
	if sh.ctr.failedApplies.Load() != 0 {
		t.Errorf("failedApplies = %d", sh.ctr.failedApplies.Load())
	}
	if sh.ctr.rejectedW.Load() != 64 {
		t.Errorf("rejectedW = %d, want 64", sh.ctr.rejectedW.Load())
	}
}

// TestAnomalyRejectSpikeNeedsVolume checks the spike window has a
// minimum-decision floor: a lone rejection in a quiet window is not a
// spike.
func TestAnomalyRejectSpikeNeedsVolume(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 1}, 64)
	if res := admitOne(sh, opJoin, "A", frac.New(1, 2)); res.Status != "queued" {
		t.Fatalf("join A: %+v", res)
	}
	if res := admitOne(sh, opJoin, "B", frac.New(1, 2)); res.Status != "queued" {
		t.Fatalf("join B: %+v", res)
	}
	// One over-capacity join: rejected, but below anomalyMinDecisions.
	if res := admitOne(sh, opJoin, "C", frac.New(1, 2)); res.Status != "rejected" {
		t.Fatalf("join C: %+v", res)
	}
	sh.advance(1)
	if rs, _, _, _ := anomalies(sh); rs != 0 {
		t.Errorf("a single quiet-window rejection counted as a spike (%d)", rs)
	}
}

// TestAnomalyDriftExcursionsStorm hammers one task with wide reweights
// under a tight drift bound: excursions must be observed while property
// (W) holds and nothing fails to apply. With the bound disabled (zero)
// the counter must stay silent under the identical storm.
func TestAnomalyDriftExcursionsStorm(t *testing.T) {
	run := func(bound frac.Rat) (*Shard, int64) {
		sh := testShard(t, ShardConfig{M: 1, DriftBound: bound}, 64)
		ts, err := workgen.NewTemplateStream(workgen.TemplateReweightStorm, stats.NewStream(1, 0), "P", 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, r := admitTemplate(t, sh, ts.Setup(nil)); r != 0 {
			t.Fatalf("storm setup rejected %d joins", r)
		}
		sh.advance(1)
		ts.Advanced()
		for round := 0; round < 64; round++ {
			q, r := admitTemplate(t, sh, ts.Next(nil, 1))
			if q != 1 || r != 0 {
				t.Fatalf("round %d: storm reweight queued=%d rejected=%d (storm must stay admission-clean)", round, q, r)
			}
			sh.advance(2)
			ts.Advanced()
		}
		if sh.ctr.failedApplies.Load() != 0 {
			t.Fatalf("failedApplies = %d", sh.ctr.failedApplies.Load())
		}
		_, de, _, _ := anomalies(sh)
		return sh, de
	}

	if _, de := run(frac.Rat{}); de != 0 {
		t.Errorf("disabled drift bound still counted %d excursions", de)
	}
	if _, de := run(frac.New(1, 1024)); de == 0 {
		t.Error("storm under a 1/1024 drift bound observed no excursions")
	}
}

// TestDeferredJoinPeakDrains provokes a condition-J deferral (a join
// admitted on requested weight that must wait for scheduling weight to
// decay), checks the peak gauge records it, and checks the queue drains
// back to empty while the peak sticks.
func TestDeferredJoinPeakDrains(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 1}, 64)
	if res := admitOne(sh, opJoin, "A", frac.New(1, 2)); res.Status != "queued" {
		t.Fatalf("join A: %+v", res)
	}
	if res := admitOne(sh, opJoin, "X", frac.New(1, 4)); res.Status != "queued" {
		t.Fatalf("join X: %+v", res)
	}
	sh.advance(2)
	// Reweight down and immediately join into the freed *requested*
	// headroom: scheduling weight has not decayed yet (1/2 + 1/4 + 1/2
	// would exceed M), so the join defers under condition J.
	if res := admitOne(sh, opReweight, "A", frac.New(1, 64)); res.Status != "queued" {
		t.Fatalf("reweight A: %+v", res)
	}
	if res := admitOne(sh, opJoin, "B", frac.New(1, 2)); res.Status != "queued" {
		t.Fatalf("join B: %+v", res)
	}
	sh.advance(1)
	_, _, _, peak := anomalies(sh)
	if peak < 1 {
		t.Fatalf("deferred-join peak %d after a condition-J deferral", peak)
	}
	for i := 0; i < 64 && len(sh.defJoins) > 0; i++ {
		sh.advance(1)
	}
	if len(sh.defJoins) != 0 {
		t.Fatalf("deferred-join queue never drained (%d left)", len(sh.defJoins))
	}
	if _, _, _, after := anomalies(sh); after != peak {
		t.Errorf("peak moved from %d to %d after the drain; it is a high-watermark", peak, after)
	}
	if sh.ctr.failedApplies.Load() != 0 {
		t.Errorf("failedApplies = %d", sh.ctr.failedApplies.Load())
	}
	// B eventually joined for real.
	found := false
	for _, name := range sh.eng.TaskNames() {
		if name == "B" {
			found = true
		}
	}
	if !found {
		t.Error("deferred join B never applied")
	}
}

// TestAnomalyBackpressureWindows checks the backpressure spike counter
// counts windows with fresh 429s, not individual 429s, and stays silent
// across windows without new ones.
func TestAnomalyBackpressureWindows(t *testing.T) {
	sh := testShard(t, ShardConfig{M: 1}, 4)
	// Window 1: three 429s (as the HTTP layer would record them).
	sh.ctr.backpressured.Add(3)
	sh.advance(1)
	if _, _, bp, _ := anomalies(sh); bp != 1 {
		t.Fatalf("backpressure spikes = %d after one hot window, want 1", bp)
	}
	// Quiet windows: no fresh 429s, no new spikes.
	sh.advance(3)
	if _, _, bp, _ := anomalies(sh); bp != 1 {
		t.Fatalf("backpressure spikes grew to %d across quiet windows", bp)
	}
	// Another hot window.
	sh.ctr.backpressured.Add(1)
	sh.advance(1)
	if _, _, bp, _ := anomalies(sh); bp != 2 {
		t.Fatalf("backpressure spikes = %d after a second hot window, want 2", bp)
	}
}

// TestHeavyFloodCapsAtM floods maximum-weight joins: exactly 2M must
// land, the rest bounce, and the requested total pins at M exactly.
func TestHeavyFloodCapsAtM(t *testing.T) {
	const m = 2
	sh := testShard(t, ShardConfig{M: m}, 64)
	ts, err := workgen.NewTemplateStream(workgen.TemplateHeavyFlood, stats.NewStream(1, 0), "P", m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmds := ts.Setup(nil); len(cmds) != 0 {
		t.Fatalf("flood has no setup, got %d commands", len(cmds))
	}
	queued, rejected := 0, 0
	for round := 0; round < 4; round++ {
		q, r := admitTemplate(t, sh, ts.Next(nil, 8))
		queued += q
		rejected += r
		sh.advance(1)
		ts.Advanced()
	}
	if queued != 2*m {
		t.Errorf("flood admitted %d half-weight joins on m=%d, want %d", queued, m, 2*m)
	}
	if rejected != 32-2*m {
		t.Errorf("flood rejected %d, want %d", rejected, 32-2*m)
	}
	if got := sh.adm.total; got != frac.FromInt(m) {
		t.Errorf("requested total %s, want exactly %d", got, m)
	}
	if sh.ctr.failedApplies.Load() != 0 {
		t.Errorf("failedApplies = %d", sh.ctr.failedApplies.Load())
	}
}
