package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// driveSomeLoad joins tasks, reweights them, and advances the clock so
// the shard accumulates a non-trivial applied log plus pending state.
func driveSomeLoad(t *testing.T, ts *httptest.Server, shard int) {
	t.Helper()
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"op":"join","task":"T%d","weight":"1/8"}`, i)
		resp, err := http.Post(fmt.Sprintf("%s/v1/shards/%d/commands", ts.URL, shard), "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("join %d: %d", i, resp.StatusCode)
		}
	}
	for s := 0; s < 3; s++ {
		resp, err := http.Post(fmt.Sprintf("%s/v1/shards/%d/advance", ts.URL, shard), "application/json", strings.NewReader(`{"slots":2}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		body := fmt.Sprintf(`{"op":"reweight","task":"T%d","weight":"1/4"}`, s)
		resp, err = http.Post(fmt.Sprintf("%s/v1/shards/%d/commands", ts.URL, shard), "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
}

// TestTailRoundTrip: the /log endpoint's complete tail must replay
// byte-identically (VerifyTail), an incremental tail must splice onto
// its prefix, and InstallShard must accept the resulting snapshot and
// serve the same digest.
func TestTailRoundTrip(t *testing.T) {
	srv, err := New(Options{Shards: 1, Config: ShardConfig{M: 2}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	driveSomeLoad(t, ts, 0)

	fetch := func(from int) *Tail {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/v1/shards/0/log?from=%d", ts.URL, from))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("log from=%d: %d", from, resp.StatusCode)
		}
		var tail Tail
		if err := json.NewDecoder(resp.Body).Decode(&tail); err != nil {
			t.Fatal(err)
		}
		return &tail
	}

	full := fetch(0)
	if full.Total == 0 || len(full.Commands) != full.Total {
		t.Fatalf("full tail carries %d of %d commands", len(full.Commands), full.Total)
	}
	digest, err := VerifyTail(full)
	if err != nil {
		t.Fatal(err)
	}
	if digest != full.Digest {
		t.Fatalf("replayed digest %016x != tail digest %016x", digest, full.Digest)
	}

	// Incremental tail splices onto the prefix it was cut from.
	mid := full.Total / 2
	delta := fetch(mid)
	if delta.From != mid {
		t.Fatalf("delta.From = %d, want %d", delta.From, mid)
	}
	snap, err := delta.BuildSnapshot(full.Commands[:mid])
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Log) != full.Total {
		t.Fatalf("spliced log has %d commands, want %d", len(snap.Log), full.Total)
	}

	// A second server installs the snapshot live and serves the digest.
	dst, err := New(Options{Shards: 1, Config: ShardConfig{M: 2}})
	if err != nil {
		t.Fatal(err)
	}
	dst.Start()
	defer dst.Stop()
	if err := dst.InstallShard(snap); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ShardTail(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != full.Digest || got.Now != full.Now {
		t.Fatalf("installed shard at (now=%d, %016x), want (now=%d, %016x)",
			got.Now, got.Digest, full.Now, full.Digest)
	}

	// A bad from is a clean 400, not a hang.
	resp, err := http.Get(ts.URL + "/v1/shards/0/log?from=999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized from answered %d, want 400", resp.StatusCode)
	}
}

// TestInstallShardSwapsLive: installing over a running shard keeps the
// slot serving — the replaced shard's digest is gone, the snapshot's is
// live.
func TestInstallShardSwapsLive(t *testing.T) {
	src, err := New(Options{Shards: 2, Config: ShardConfig{M: 2}})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	defer src.Stop()
	ts := httptest.NewServer(src.Handler())
	defer ts.Close()
	driveSomeLoad(t, ts, 1)

	tail, err := src.ShardTail(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := tail.BuildSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}

	dst, err := New(Options{Shards: 2, Config: ShardConfig{M: 2}})
	if err != nil {
		t.Fatal(err)
	}
	dst.Start()
	defer dst.Stop()
	if err := dst.InstallShard(snap); err != nil {
		t.Fatal(err)
	}
	// The other slot is untouched, the installed one answers with the
	// migrated clock.
	if now, err := dst.Advance(0, 1); err != nil || now != 1 {
		t.Fatalf("slot 0 advance: now=%d err=%v, want 1", now, err)
	}
	got, err := dst.ShardTail(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != tail.Digest {
		t.Fatalf("slot 1 digest %016x, want %016x", got.Digest, tail.Digest)
	}
}
