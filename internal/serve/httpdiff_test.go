package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// postJSON posts v (marshalled) and returns the status code and body.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// driveSlots posts a deterministic mix of single and batched commands
// against shard 0 and advances one slot each round, starting task names
// at T<base>.
func driveSlots(t *testing.T, base string, slots int, nameBase int) {
	t.Helper()
	for slot := 0; slot < slots; slot++ {
		n := nameBase + slot
		switch slot % 4 {
		case 0:
			code, body := postJSON(t, base+"/v1/shards/0/commands", CommandRequest{
				Op: "join", Task: fmt.Sprintf("T%d", n), Weight: "1/16",
			})
			if code != http.StatusOK {
				t.Fatalf("slot %d join: %d: %s", slot, code, body)
			}
		case 1:
			// Batched: a join and a reweight of the previous join in one
			// request — the same-slot batch applies atomically.
			code, body := postJSON(t, base+"/v1/shards/0/commands", []CommandRequest{
				{Op: "join", Task: fmt.Sprintf("T%d", n), Weight: "1/32"},
				{Op: "reweight", Task: fmt.Sprintf("T%d", n-1), Weight: "3/32"},
			})
			if code != http.StatusOK {
				t.Fatalf("slot %d batch: %d: %s", slot, code, body)
			}
			var results []CommandResult
			if err := json.Unmarshal(body, &results); err != nil {
				t.Fatalf("slot %d batch decode: %v", slot, err)
			}
			for i, res := range results {
				if res.Status != "queued" {
					t.Fatalf("slot %d batch item %d not queued: %+v", slot, i, res)
				}
			}
		case 2:
			code, body := postJSON(t, base+"/v1/shards/0/commands", CommandRequest{
				Op: "reweight", Task: fmt.Sprintf("T%d", n-1), Weight: "1/8",
			})
			if code != http.StatusOK {
				t.Fatalf("slot %d reweight: %d: %s", slot, code, body)
			}
		case 3:
			code, body := postJSON(t, base+"/v1/shards/0/commands", CommandRequest{
				Op: "leave", Task: fmt.Sprintf("T%d", n-3),
			})
			if code != http.StatusOK {
				t.Fatalf("slot %d leave: %d: %s", slot, code, body)
			}
		}
		if code, body := postJSON(t, base+"/v1/shards/0/advance", AdvanceRequest{Slots: 1}); code != http.StatusOK {
			t.Fatalf("slot %d advance: %d: %s", slot, code, body)
		}
	}
}

// TestHTTPDifferentialAgainstDirectCore is the tentpole's differential
// proof: a shard driven entirely over HTTP — including one full
// snapshot/restore cycle through Server.Stop/Snapshots/New — must be
// byte-identical (schedule rows with CPU assignments, misses, drift and
// lag accounting) to a fresh core.Scheduler fed the shard's applied
// command log directly.
func TestHTTPDifferentialAgainstDirectCore(t *testing.T) {
	cfg := ShardConfig{M: 2, RecordSchedule: true}
	srv, err := New(Options{Shards: 2, Config: cfg, MailboxCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())

	driveSlots(t, ts.URL, 12, 0)

	// Cycle: quiesce HTTP, stop shards, snapshot, rebuild, restart.
	ts.Close()
	srv.Stop()
	snaps := srv.Snapshots()
	srv2, err := New(Options{Shards: 2, Config: cfg, MailboxCap: 64, Snapshots: snaps})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	srv2.Start()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Stop()

	driveSlots(t, ts2.URL, 12, 12)

	// The served view of the engine state.
	var state StateResponse
	getJSON(t, ts2.URL+"/v1/shards/0/state", &state)

	// The shard's own account of what it applied.
	var snap Snapshot
	getJSON(t, ts2.URL+"/v1/shards/0/snapshot", &snap)

	// Drive a fresh engine directly with that log.
	ccfg, err := snap.Config.coreConfig()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Replay(ccfg, snap.Seed, snap.Log, snap.Now)
	if err != nil {
		t.Fatalf("direct replay of served log: %v", err)
	}
	var b strings.Builder
	if err := direct.WriteState(&b); err != nil {
		t.Fatal(err)
	}
	if direct.StateDigest() != state.Digest {
		t.Errorf("digest: direct %016x, served %016x", direct.StateDigest(), state.Digest)
	}
	if b.String() != state.State {
		t.Fatalf("state diverges:\n--- direct ---\n%s--- served ---\n%s", b.String(), state.State)
	}
	if !strings.Contains(state.State, "slot 20:") {
		t.Fatal("served state carries no schedule rows; differential test would be vacuous")
	}

	// The service promised every admitted command applied.
	var st ShardStatus
	getJSON(t, ts2.URL+"/v1/shards/0?tasks=1", &st)
	if st.FailedApplies != 0 {
		t.Fatalf("failed applies: %d", st.FailedApplies)
	}
	if st.Violations != 0 {
		t.Fatalf("engine invariant violations: %d", st.Violations)
	}
	if st.Now != 24 {
		t.Fatalf("clock at %d, want 24", st.Now)
	}
	if len(st.Tasks) == 0 {
		t.Fatal("status carries no task rows")
	}
}
