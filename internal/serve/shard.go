package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/frac"
	"repro/internal/model"
)

// ShardConfig is the serializable per-shard engine configuration. It is
// recorded in snapshots so a restore rebuilds an identically configured
// engine (the digest check would catch a mismatch).
type ShardConfig struct {
	// M is the shard's processor count.
	M int `json:"m"`
	// Policy selects the reweighting scheme: "oi" (default), "lj", or
	// "hybrid".
	Policy string `json:"policy,omitempty"`
	// OIThreshold drives the hybrid policy: a change with |to-from|
	// below the threshold uses rules O/I, anything larger leave/join.
	// Exact rational, so the hybrid decision is deterministic.
	OIThreshold frac.Rat `json:"oi_threshold"`
	// EarlyRelease enables the ERfair extension.
	EarlyRelease bool `json:"early_release,omitempty"`
	// RecordSchedule keeps the per-slot schedule log; required for the
	// byte-exact differential tests, costly over long horizons.
	RecordSchedule bool `json:"record_schedule,omitempty"`
	// DriftBound, when positive, is the anomaly threshold for
	// instantaneous per-task |drift|: a slot boundary where any task
	// exceeds it bumps pd2d_anomaly_drift_excursions_total. Exact
	// rational so the comparison is deterministic. Observability only —
	// it never influences scheduling, admission, or digests (coreConfig
	// ignores it).
	DriftBound frac.Rat `json:"drift_bound,omitempty"`
}

func parsePolicy(s string) (core.PolicyKind, error) {
	switch s {
	case "", "oi":
		return core.PolicyOI, nil
	case "lj":
		return core.PolicyLJ, nil
	case "hybrid":
		return core.PolicyHybrid, nil
	}
	return 0, fmt.Errorf("serve: policy %q is not one of oi, lj, hybrid", s)
}

func (c ShardConfig) policyName() string {
	if c.Policy == "" {
		return "oi"
	}
	return c.Policy
}

// CoreConfig resolves the wire config into an engine config — the
// exported face of coreConfig for the cluster layer, whose follower
// replicas run bare engines against the same configuration a serve
// shard would.
func (c ShardConfig) CoreConfig() (core.Config, error) { return c.coreConfig() }

// coreConfig resolves the wire config into an engine config. Policing
// is always on — property (W) is the service's admission contract — and
// invariant checking is always on so violations are observable on the
// status endpoint.
func (c ShardConfig) coreConfig() (core.Config, error) {
	pol, err := parsePolicy(c.Policy)
	if err != nil {
		return core.Config{}, err
	}
	if c.M < 1 {
		return core.Config{}, fmt.Errorf("serve: shard needs M >= 1, got %d", c.M)
	}
	cfg := core.Config{
		M:               c.M,
		Policy:          pol,
		Police:          true,
		CheckInvariants: true,
		EarlyRelease:    c.EarlyRelease,
		RecordSchedule:  c.RecordSchedule,
	}
	if pol == core.PolicyHybrid {
		th := c.OIThreshold
		cfg.UseOI = func(task string, from, to frac.Rat) bool {
			return to.Sub(from).Abs().Less(th)
		}
	}
	return cfg, nil
}

// Shard is one independently scheduled engine instance. All fields
// below the channel block are owned by the run goroutine between Start
// and the close of done; the HTTP side communicates exclusively through
// the mailbox (see mailbox.go) and the atomic counters in ctr.
type Shard struct {
	id  int
	cfg ShardConfig

	mbox  chan *pending
	pool  pendingPool
	tickc chan struct{}
	quit  chan struct{}
	done  chan struct{}

	// Single-writer state (run goroutine only).
	eng       *core.Scheduler
	adm       *admission
	seed      model.System
	log       []core.Command // commands actually applied, in order
	batch     []wireCmd      // admitted this slot, applies at next boundary
	defJoins  []wireCmd      // admitted joins awaiting condition-J headroom
	defLeaves []string       // admitted leaves awaiting rule L
	drain     []*pending     // reused scratch for one mailbox drain

	// Anomaly-window baselines: counter values at the previous
	// publishStatus, so noteAnomalies sees per-window deltas.
	lastDecisions     int64
	lastRejections    int64
	lastBackpressured int64

	ctr counters
}

// newShard builds a stopped shard with an empty engine. Tasks arrive
// through commands.
func newShard(id int, cfg ShardConfig, mailboxCap int) (*Shard, error) {
	ccfg, err := cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	seed := model.System{M: cfg.M}
	eng, err := core.New(ccfg, seed)
	if err != nil {
		return nil, err
	}
	if mailboxCap < 1 {
		mailboxCap = 1
	}
	sh := &Shard{
		id:    id,
		cfg:   cfg,
		mbox:  make(chan *pending, mailboxCap),
		tickc: make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		eng:   eng,
		adm:   newAdmission(cfg.M),
		seed:  seed,
		drain: make([]*pending, 0, mailboxCap+1),
	}
	sh.publishStatus()
	return sh, nil
}

// start launches the single-writer loop.
func (sh *Shard) start() { go sh.run() }

// stop asks the loop to drain the mailbox and exit, and waits for it.
// The caller must have stopped the HTTP side first: nothing may submit
// to the mailbox once draining begins.
func (sh *Shard) stop() {
	close(sh.quit)
	<-sh.done
}

// submit offers a record to the mailbox without blocking. A false
// return is backpressure: the caller answers 429 and frees the record.
func (sh *Shard) submit(p *pending) bool {
	select {
	case sh.mbox <- p:
		return true
	default:
		return false
	}
}

// TickC is the shard's advance-tick input: a non-blocking send here
// advances the shard one slot. The channel is buffered (capacity 1) so
// a slow shard coalesces ticks instead of queueing them. The wall-clock
// side lives in cmd/pd2d; serve itself never reads a clock.
func (sh *Shard) TickC() chan<- struct{} { return sh.tickc }

// run is the shard's single-writer loop: every engine and admission
// mutation happens here, serialized by the mailbox.
//
//lint:noalloc the mailbox drain; per-request work must not allocate beyond the declared reply boundaries
func (sh *Shard) run() {
	defer close(sh.done)
	for {
		select {
		case p := <-sh.mbox:
			sh.drainAndHandle(p)
		case <-sh.tickc:
			sh.advance(1)
		case <-sh.quit:
			// The server has quiesced the submitters, so the mailbox can
			// only shrink: drain it, answer everything, then exit.
			for {
				select {
				case p := <-sh.mbox:
					sh.drainAndHandle(p)
				default:
					sh.publishStatus()
					return
				}
			}
		}
	}
}

// drainAndHandle empties the mailbox into the reused drain scratch and
// answers every record. Contiguous runs of command records share one
// property-(W) evaluation: posDelta bounds the run's worst-case weight
// increase, and when headroom covers the bound, every per-command
// weight comparison is provably redundant and skipped (checkW=false).
// The drain is capped at the mailbox capacity so the scratch never
// regrows and concurrent submitters cannot starve tick handling.
//
//lint:noalloc the mailbox drain; per-request work must not allocate beyond the declared reply boundaries
func (sh *Shard) drainAndHandle(first *pending) {
	sh.drain = append(sh.drain[:0], first)
	for n := cap(sh.mbox); n > 0; n-- {
		select {
		case p := <-sh.mbox:
			sh.drain = append(sh.drain, p)
			continue
		default:
		}
		break
	}
	for i := 0; i < len(sh.drain); {
		if sh.drain[i].kind != pendCommands {
			sh.handle(sh.drain[i], true)
			i++
			continue
		}
		j := i
		var bound frac.Rat
		for j < len(sh.drain) && sh.drain[j].kind == pendCommands {
			bound = bound.Add(sh.adm.posDelta(sh.drain[j].cmds))
			j++
		}
		checkW := sh.adm.headroom().Less(bound)
		for ; i < j; i++ {
			sh.handle(sh.drain[i], checkW)
		}
	}
	for k := range sh.drain {
		sh.drain[k] = nil
	}
	sh.drain = sh.drain[:0]
}

// handle answers one mailbox record. Every dequeued record gets exactly
// one reply. checkW=false skips per-command property-(W) comparisons —
// only sound when the caller's drain-wide posDelta bound fit headroom.
func (sh *Shard) handle(p *pending, checkW bool) {
	switch p.kind {
	case pendCommands:
		results := p.results[:0]
		for i := range p.cmds {
			results = append(results, sh.admit(&p.cmds[i], checkW))
		}
		p.results = results
		p.reply <- reply{results: results, now: sh.eng.Now()}
	case pendAdvance:
		sh.advance(p.slots)
		p.reply <- reply{now: sh.eng.Now()}
	case pendQuery:
		sh.ctr.queries.Add(1)
		st := sh.status(p.withTasks)
		p.reply <- reply{status: st, now: sh.eng.Now()}
	case pendState:
		var b strings.Builder
		_ = sh.eng.WriteState(&b) // strings.Builder writes cannot fail
		//lint:allow hotalloc the state reply is a caller-owned copy; the render itself reuses the engine's buffer
		p.reply <- reply{state: []byte(b.String()), digest: sh.eng.StateDigest(), now: sh.eng.Now()}
	case pendSnapshot:
		data, err := json.Marshal(sh.buildSnapshot()) //lint:allow hotalloc snapshot serialization is a rare administrative operation
		p.reply <- reply{state: data, err: err, now: sh.eng.Now()}
	case pendLog:
		t, err := sh.buildTail(p.from)
		p.reply <- reply{tail: t, err: err, now: sh.eng.Now()}
	default:
		panic(fmt.Sprintf("serve: unhandled pending kind %d", p.kind))
	}
}

// admit runs the property-(W) admission decision for one command and,
// on success, stages it for the next slot boundary. The staged copy
// carries the admission layer's canonical interned name and drops the
// raw alias, so the batch never retains pooled request memory.
func (sh *Shard) admit(c *wireCmd, checkW bool) CommandResult {
	var (
		aerr *admissionError
		name string
	)
	switch c.op {
	case opJoin:
		name, aerr = sh.adm.admitJoin(c.raw, c.weight, checkW)
	case opReweight:
		name, aerr = sh.adm.admitReweight(c.raw, c.weight, checkW)
	case opLeave:
		name, aerr = sh.adm.admitLeave(c.raw)
	default:
		panic(fmt.Sprintf("serve: unhandled pending op %d", c.op))
	}
	if aerr != nil {
		return sh.rejected(aerr)
	}
	staged := *c
	staged.raw = nil
	staged.task = name
	sh.batch = append(sh.batch, staged)
	sh.ctr.accepted.Add(1)
	return CommandResult{Status: "queued", Slot: sh.eng.Now()}
}

// rejected maps an admission error to its wire result and counters.
//
//lint:allocok formats the rejection reason and headroom; runs only on the rejection path
func (sh *Shard) rejected(aerr *admissionError) CommandResult {
	res := CommandResult{Status: "rejected", Error: aerr.kind, Reason: aerr.reason}
	switch aerr.kind {
	case errWeight:
		res.Code = 409
		res.Headroom = aerr.headroom.String()
		sh.ctr.rejectedW.Add(1)
	case errUnknown:
		res.Code = 404
		sh.ctr.rejectedOther.Add(1)
	default: // errConflict and anything future
		res.Code = 409
		sh.ctr.rejectedOther.Add(1)
	}
	return res
}

// advance steps the clock n slots, flushing the staged batch at each
// boundary first so same-slot mutations apply atomically before the
// slot is scheduled.
func (sh *Shard) advance(n int64) {
	if n < 1 {
		n = 1
	}
	for i := int64(0); i < n; i++ {
		sh.flush()
		sh.eng.Step()
		sh.ctr.advances.Add(1)
	}
	sh.publishStatus()
}

// engineFits reports whether condition J admits weight w right now:
// the engine's transient scheduling-weight total plus w stays within M.
func (sh *Shard) engineFits(w frac.Rat) bool {
	return !frac.FromInt(int64(sh.cfg.M)).Less(sh.eng.TotalSchedWeight().Add(w))
}

// flush applies the staged work at the current slot boundary, in three
// passes that preserve admission order: deferred leaves (rule L may
// finally permit them, freeing weight), deferred joins (strict FIFO —
// the queue head blocks younger joins so admission order is never
// inverted), then this slot's batch in arrival order. Admission
// guarantees each apply succeeds or defers; anything else is counted in
// failedApplies, which tests pin to zero.
func (sh *Shard) flush() {
	now := sh.eng.Now()

	kept := sh.defLeaves[:0]
	for _, name := range sh.defLeaves {
		c := core.Command{At: now, Op: core.OpLeave, Task: name}
		err := sh.eng.Apply(c)
		switch {
		case err == nil:
			sh.log = append(sh.log, c)
			sh.adm.completeLeave(name)
			sh.ctr.applied.Add(1)
		case errors.Is(err, core.ErrLeaveTooEarly):
			kept = append(kept, name)
		default:
			sh.ctr.failedApplies.Add(1)
			sh.adm.completeLeave(name)
		}
	}
	sh.defLeaves = kept

	for len(sh.defJoins) > 0 {
		c := sh.defJoins[0]
		if !sh.engineFits(c.weight) {
			break
		}
		sh.applyJoin(c)
		sh.defJoins = sh.defJoins[1:]
	}

	for _, c := range sh.batch {
		switch c.op {
		case opJoin:
			if len(sh.defJoins) > 0 || !sh.engineFits(c.weight) {
				sh.defJoins = append(sh.defJoins, c)
				sh.ctr.deferred.Add(1)
				continue
			}
			sh.applyJoin(c)
		case opReweight:
			cc := core.Command{At: now, Op: core.OpReweight, Task: c.task, Weight: c.weight}
			if err := sh.eng.Apply(cc); err != nil {
				sh.ctr.failedApplies.Add(1)
			} else {
				sh.log = append(sh.log, cc)
				sh.ctr.applied.Add(1)
			}
		case opLeave:
			cc := core.Command{At: now, Op: core.OpLeave, Task: c.task}
			err := sh.eng.Apply(cc)
			switch {
			case err == nil:
				sh.log = append(sh.log, cc)
				sh.adm.completeLeave(c.task)
				sh.ctr.applied.Add(1)
			case errors.Is(err, core.ErrLeaveTooEarly):
				sh.defLeaves = append(sh.defLeaves, c.task)
				sh.ctr.deferred.Add(1)
			default:
				sh.ctr.failedApplies.Add(1)
				sh.adm.completeLeave(c.task)
			}
		default:
			panic(fmt.Sprintf("serve: unhandled pending op %d", c.op))
		}
	}
	sh.batch = sh.batch[:0]
	// Deferred-join depth peaks right after a flush that deferred work;
	// track it here so multi-slot advances cannot hide a transient.
	// Single-writer, so the load/store pair cannot race another writer.
	if d := int64(len(sh.defJoins)); d > sh.ctr.deferredJoinPeak.Load() {
		sh.ctr.deferredJoinPeak.Store(d)
	}
}

// applyJoin applies an admitted join whose condition-J check passed.
func (sh *Shard) applyJoin(c wireCmd) {
	cc := core.Command{At: sh.eng.Now(), Op: core.OpJoin, Task: c.task, Weight: c.weight, Group: c.group}
	if err := sh.eng.Apply(cc); err != nil {
		sh.ctr.failedApplies.Add(1)
		sh.adm.abortJoin(c.task)
		return
	}
	sh.log = append(sh.log, cc)
	sh.adm.joinApplied(c.task)
	sh.ctr.applied.Add(1)
}

// status assembles the shard's wire status from engine and admission
// state. Run-goroutine only.
//
//lint:allocok composes a fresh status snapshot per query/publish; the reply escapes to HTTP handlers, so reuse would race
func (sh *Shard) status(withTasks bool) *ShardStatus {
	st := &ShardStatus{
		Shard:             sh.id,
		Now:               sh.eng.Now(),
		Policy:            sh.cfg.policyName(),
		M:                 sh.cfg.M,
		TotalSchedWt:      sh.eng.TotalSchedWeight().String(),
		TotalSchedWtFloat: sh.eng.TotalSchedWeight().Float64(),
		RequestedWt:       sh.adm.total.String(),
		Headroom:          sh.adm.headroom().String(),
		Misses:            int64(len(sh.eng.Misses())),
		Holes:             sh.eng.Holes(),
		OverheadSlots:     sh.eng.OverheadSlots(),
		Violations:        len(sh.eng.Violations()),
		PendingBatch:      len(sh.batch),
		DeferredJoins:     len(sh.defJoins),
		DeferredLeaves:    len(sh.defLeaves),
	}
	sh.ctr.fill(st)
	active := 0
	maxDrift := frac.Rat{}
	sumLag := frac.Rat{}
	for _, m := range sh.eng.AllMetrics() {
		if m.Active {
			active++
			sumLag = sumLag.Add(m.Lag.Abs())
		}
		maxDrift = frac.Max(maxDrift, m.MaxAbsDrift)
		if withTasks {
			st.Tasks = append(st.Tasks, TaskStatus{
				Name:        m.Name,
				Weight:      m.Weight.String(),
				SchedWeight: m.SchedWeight.String(),
				Active:      m.Active,
				Scheduled:   m.Scheduled,
				Drift:       m.Drift.String(),
				DriftFloat:  m.Drift.Float64(),
				MaxAbsDrift: m.MaxAbsDrift.String(),
				Lag:         m.Lag.String(),
				LagFloat:    m.Lag.Float64(),
				Misses:      m.Misses,
			})
		}
	}
	st.ActiveTasks = active
	st.MaxAbsDrift = maxDrift.String()
	st.MaxAbsDriftFloat = maxDrift.Float64()
	st.SumAbsLag = sumLag.String()
	st.SumAbsLagFloat = sumLag.Float64()
	return st
}

// anomalyMinDecisions is the minimum admission decisions in a window
// before its rejection rate is judged: tiny windows (a lone 409) are
// noise, not an anomaly.
const anomalyMinDecisions = 8

// noteAnomalies closes the observation window that ended at this slot
// boundary and bumps the anomaly counters the window earned:
//
//   - reject spike: at least anomalyMinDecisions admission decisions
//     and a majority of them rejections;
//   - backpressure spike: any fresh 429s since the last boundary;
//   - drift excursion: some task's instantaneous |drift| exceeds the
//     configured DriftBound (exact comparison; zero bound disables).
//
// Counters cross the window monotonically, so deltas against the saved
// baselines are exact. Run-goroutine only.
//
//lint:allocok AllMetrics composes the per-task metric slice; runs once per publish boundary, not per slot
func (sh *Shard) noteAnomalies() {
	accepted := sh.ctr.accepted.Load()
	rejections := sh.ctr.rejectedW.Load() + sh.ctr.rejectedOther.Load()
	decisions := accepted + rejections
	dDec := decisions - sh.lastDecisions
	dRej := rejections - sh.lastRejections
	sh.lastDecisions = decisions
	sh.lastRejections = rejections
	if dDec >= anomalyMinDecisions && 2*dRej > dDec {
		sh.ctr.anomRejectSpikes.Add(1)
	}
	if bp := sh.ctr.backpressured.Load(); bp > sh.lastBackpressured {
		sh.ctr.anomBackpressure.Add(1)
		sh.lastBackpressured = bp
	}
	if sh.cfg.DriftBound.Sign() > 0 {
		for _, m := range sh.eng.AllMetrics() {
			if sh.cfg.DriftBound.Less(m.Drift.Abs()) {
				sh.ctr.anomDriftExcur.Add(1)
				break
			}
		}
	}
}

// publishStatus refreshes the lock-free gauge the /metrics handler
// reads. Called at every boundary and at loop exit. Anomaly windows
// close first so the published status carries their fresh values.
func (sh *Shard) publishStatus() {
	sh.noteAnomalies()
	sh.ctr.gauge.Store(sh.status(false))
}
