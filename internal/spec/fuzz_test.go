package spec

import "testing"

func FuzzParse(f *testing.F) {
	f.Add([]byte(fig6bJSON))
	f.Add([]byte(`{"m":1,"horizon":10,"tasks":[{"name":"A","weight":"1/2"}]}`))
	f.Add([]byte(`{"m":0}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"m":1,"horizon":5,"policy":"hybrid","oiThreshold":0.5,"tasks":[{"name":"A","weight":"1/3","replicate":2}],"events":[{"at":1,"task":"A#0","reweight":"1/4"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		f, err := Parse(data)
		if err != nil {
			return
		}
		// A spec that parses must build and validate structurally.
		sys := f.System()
		if sys.M != f.M {
			t.Fatalf("system M mismatch")
		}
		if len(sys.Tasks) == 0 {
			t.Fatalf("validated spec with no tasks")
		}
	})
}
