// Package spec loads task-system descriptions and event scripts from JSON,
// so arbitrary adaptive scenarios can be run from the command line without
// writing Go. A spec file looks like:
//
//	{
//	  "m": 4,
//	  "policy": "oi",
//	  "horizon": 40,
//	  "tiebreakGroup": "C",
//	  "tasks": [
//	    {"name": "T",  "weight": "3/20", "group": "T"},
//	    {"name": "C",  "weight": "3/20", "group": "C", "replicate": 19}
//	  ],
//	  "events": [
//	    {"at": 10, "task": "T", "reweight": "1/2"},
//	    {"at": 25, "task": "T", "leave": true},
//	    {"at": 30, "join": {"name": "U", "weight": "1/2"}},
//	    {"at": 32, "task": "C#0", "delay": 2},
//	    {"at": 0,  "task": "C#1", "absent": 3}
//	  ]
//	}
//
// Weights are exact rationals written as "num/den". The policy is one of
// "oi" (rules O and I), "lj" (leave/join) or "hybrid" with an optional
// "oiThreshold" (minimum |Δw| routed to rules O/I).
package spec

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/frac"
	"repro/internal/model"
)

// TaskSpec is one task (or a replicated family) in the file.
type TaskSpec struct {
	Name      string   `json:"name"`
	Weight    frac.Rat `json:"weight"`
	Group     string   `json:"group,omitempty"`
	Join      int64    `json:"join,omitempty"`
	Replicate int      `json:"replicate,omitempty"` // expand to name#0..name#n-1
}

// JoinSpec describes a task joining mid-run.
type JoinSpec struct {
	Name   string   `json:"name"`
	Weight frac.Rat `json:"weight"`
	Group  string   `json:"group,omitempty"`
}

// Event is one scripted action.
type Event struct {
	At       model.Time `json:"at"`
	Task     string     `json:"task,omitempty"`
	Reweight *frac.Rat  `json:"reweight,omitempty"`
	Leave    bool       `json:"leave,omitempty"`
	Join     *JoinSpec  `json:"join,omitempty"`
	Delay    int64      `json:"delay,omitempty"`  // IS separation on the next release
	Absent   int64      `json:"absent,omitempty"` // mark this absolute subtask index absent
}

// File is a complete scenario description.
type File struct {
	M             int        `json:"m"`
	Policy        string     `json:"policy"`
	OIThreshold   *float64   `json:"oiThreshold,omitempty"`
	Horizon       model.Time `json:"horizon"`
	TiebreakGroup string     `json:"tiebreakGroup,omitempty"`
	// AllowHeavy admits tasks of weight up to 1 (full PD² priority with
	// group deadlines); reweighting stays restricted to light tasks.
	AllowHeavy bool `json:"allowHeavy,omitempty"`
	// EarlyRelease enables the ERfair extension.
	EarlyRelease bool       `json:"earlyRelease,omitempty"`
	Tasks        []TaskSpec `json:"tasks"`
	Events       []Event    `json:"events,omitempty"`
}

// Parse decodes and validates a spec file.
func Parse(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Load reads and parses a spec file from disk.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return Parse(data)
}

func (f *File) validate() error {
	if f.M < 1 {
		return fmt.Errorf("spec: m must be at least 1")
	}
	if f.Horizon < 1 {
		return fmt.Errorf("spec: horizon must be at least 1")
	}
	switch f.Policy {
	case "", "oi", "lj", "hybrid":
	default:
		return fmt.Errorf("spec: unknown policy %q (want oi, lj or hybrid)", f.Policy)
	}
	if len(f.Tasks) == 0 {
		return fmt.Errorf("spec: no tasks")
	}
	for _, e := range f.Events {
		actions := 0
		if e.Reweight != nil {
			actions++
		}
		if e.Leave {
			actions++
		}
		if e.Join != nil {
			actions++
		}
		if e.Delay > 0 {
			actions++
		}
		if e.Absent > 0 {
			actions++
		}
		if actions != 1 {
			return fmt.Errorf("spec: event at t=%d must have exactly one action", e.At)
		}
		if e.Join == nil && e.Task == "" {
			return fmt.Errorf("spec: event at t=%d needs a task", e.At)
		}
	}
	return nil
}

// PolicyKind returns the core policy selected by the file.
func (f *File) PolicyKind() core.PolicyKind {
	switch f.Policy {
	case "lj":
		return core.PolicyLJ
	case "hybrid":
		return core.PolicyHybrid
	default:
		return core.PolicyOI
	}
}

// System expands the replicated task specs into a model.System.
func (f *File) System() model.System {
	var tasks []model.Spec
	for _, t := range f.Tasks {
		base := model.Spec{Name: t.Name, Weight: t.Weight, Group: t.Group, Join: t.Join}
		if t.Replicate > 1 {
			tasks = append(tasks, model.Replicate(t.Replicate, base)...)
		} else {
			tasks = append(tasks, base)
		}
	}
	return model.System{M: f.M, Tasks: tasks}
}

// Build constructs the scheduler for the scenario (with schedule and drift
// recording enabled, since spec runs exist to be inspected).
func (f *File) Build() (*core.Scheduler, error) {
	cfg := core.Config{
		M:                 f.M,
		Policy:            f.PolicyKind(),
		Police:            true,
		RecordSchedule:    true,
		RecordDriftEvents: true,
		RecordSubtasks:    true,
		AllowHeavy:        f.AllowHeavy,
		EarlyRelease:      f.EarlyRelease,
	}
	if f.TiebreakGroup != "" {
		cfg.TieBreak = core.FavorGroup(f.TiebreakGroup)
	}
	if f.Policy == "hybrid" && f.OIThreshold != nil {
		choose := expr.ThresholdChooser(*f.OIThreshold)
		cfg.UseOI = func(task string, from, to frac.Rat) bool { return choose(task, from, to) }
	}
	return core.New(cfg, f.System())
}

// Run builds the scheduler, applies time-zero absent marks, and replays the
// event script to the horizon.
func (f *File) Run() (*core.Scheduler, error) {
	s, err := f.Build()
	if err != nil {
		return nil, err
	}
	events := make([]Event, len(f.Events))
	copy(events, f.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	// Absent marks apply before anything is released.
	rest := events[:0]
	for _, e := range events {
		if e.Absent > 0 {
			if err := s.MarkAbsent(e.Task, e.Absent); err != nil {
				return nil, fmt.Errorf("spec: absent %s_%d: %w", e.Task, e.Absent, err)
			}
			continue
		}
		rest = append(rest, e)
	}
	events = rest

	idx := 0
	var runErr error
	s.Run(f.Horizon, func(now model.Time, sch *core.Scheduler) {
		for idx < len(events) && events[idx].At == now {
			e := events[idx]
			idx++
			var err error
			switch {
			case e.Reweight != nil:
				err = sch.Initiate(e.Task, *e.Reweight)
			case e.Leave:
				err = sch.Leave(e.Task)
			case e.Join != nil:
				err = sch.Join(model.Spec{Name: e.Join.Name, Weight: e.Join.Weight, Group: e.Join.Group})
			case e.Delay > 0:
				err = sch.DelayNext(e.Task, e.Delay)
			}
			if err != nil && runErr == nil {
				runErr = fmt.Errorf("spec: event at t=%d: %w", now, err)
			}
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return s, nil
}
