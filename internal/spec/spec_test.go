package spec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/frac"
)

const fig6bJSON = `{
  "m": 4,
  "policy": "oi",
  "horizon": 30,
  "tiebreakGroup": "C",
  "tasks": [
    {"name": "C", "weight": "3/20", "group": "C", "replicate": 19},
    {"name": "T", "weight": "3/20", "group": "T"}
  ],
  "events": [
    {"at": 10, "task": "T", "reweight": "1/2"}
  ]
}`

func TestParseAndRunFig6b(t *testing.T) {
	f, err := Parse([]byte(fig6bJSON))
	if err != nil {
		t.Fatal(err)
	}
	sys := f.System()
	if len(sys.Tasks) != 20 {
		t.Fatalf("tasks = %d, want 20 (19 replicas + T)", len(sys.Tasks))
	}
	s, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	m, ok := s.Metrics("T")
	if !ok {
		t.Fatal("no metrics for T")
	}
	// Fig. 6(b): rule O at t=10 gives drift exactly 1/2.
	if !m.Drift.Eq(frac.Half) {
		t.Errorf("drift = %s, want 1/2", m.Drift)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
}

func TestAllEventKinds(t *testing.T) {
	j := `{
	  "m": 2,
	  "policy": "lj",
	  "horizon": 40,
	  "tasks": [
	    {"name": "A", "weight": "2/5"},
	    {"name": "B", "weight": "1/5"}
	  ],
	  "events": [
	    {"at": 0,  "task": "B", "absent": 2},
	    {"at": 5,  "task": "A", "reweight": "1/10"},
	    {"at": 12, "task": "B", "delay": 3},
	    {"at": 20, "join": {"name": "Z", "weight": "1/2"}},
	    {"at": 30, "task": "Z", "leave": true}
	  ]
	}`
	f, err := Parse([]byte(j))
	if err != nil {
		t.Fatal(err)
	}
	if f.PolicyKind().String() != "PD2-LJ" {
		t.Errorf("policy = %v", f.PolicyKind())
	}
	s, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
	if _, ok := s.Metrics("Z"); !ok {
		t.Error("joined task Z missing")
	}
	// The delayed B release left one unpaid slot in I_PS relative to 40*w.
	m, _ := s.Metrics("B")
	full := frac.New(1, 5).MulInt(40)
	if !m.CumPS.Less(full) {
		t.Errorf("delay did not pause I_PS: %s vs %s", m.CumPS, full)
	}
}

func TestHybridThreshold(t *testing.T) {
	j := `{
	  "m": 1, "policy": "hybrid", "oiThreshold": 0.2, "horizon": 20,
	  "tasks": [{"name": "A", "weight": "1/10"}],
	  "events": [{"at": 3, "task": "A", "reweight": "1/2"}]
	}`
	f, err := Parse([]byte(j))
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	// |Δw| = 0.4 >= 0.2, so the hybrid routes it to rules O/I: the change
	// is enacted quickly rather than waiting for d(T_1)+b = 10.
	m, _ := s.Metrics("A")
	if !m.SchedWeight.Eq(frac.Half) {
		t.Errorf("swt = %s", m.SchedWeight)
	}
	if m.Drift.Float64() > 1 {
		t.Errorf("drift %s too large for an OI-routed event", m.Drift)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []string{
		`{"m":0,"horizon":10,"tasks":[{"name":"A","weight":"1/2"}]}`,
		`{"m":1,"horizon":0,"tasks":[{"name":"A","weight":"1/2"}]}`,
		`{"m":1,"horizon":10,"tasks":[]}`,
		`{"m":1,"horizon":10,"policy":"bogus","tasks":[{"name":"A","weight":"1/2"}]}`,
		`{"m":1,"horizon":10,"tasks":[{"name":"A","weight":"1/2"}],"events":[{"at":1}]}`,
		`{"m":1,"horizon":10,"tasks":[{"name":"A","weight":"1/2"}],"events":[{"at":1,"task":"A","leave":true,"delay":2}]}`,
		`{"m":1,"horizon":10,"tasks":[{"name":"A","weight":"1/2"}],"events":[{"at":1,"reweight":"1/4"}]}`,
		`{"m":1,"horizon":10,"tasks":[{"name":"A","weight":"not-a-rat"}]}`,
		`{not json`,
	}
	for i, j := range bad {
		if _, err := Parse([]byte(j)); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestRunReportsEventErrors(t *testing.T) {
	j := `{
	  "m": 1, "policy": "oi", "horizon": 10,
	  "tasks": [{"name": "A", "weight": "1/2"}],
	  "events": [{"at": 2, "task": "ghost", "reweight": "1/4"}]
	}`
	f, err := Parse([]byte(j))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("event error not surfaced: %v", err)
	}
}

func TestLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, []byte(fig6bJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.M != 4 {
		t.Errorf("m = %d", f.M)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestHeavyAndERfairSpecs: spec files can opt into heavy tasks and early
// releases.
func TestHeavyAndERfairSpecs(t *testing.T) {
	j := `{
	  "m": 2, "policy": "oi", "horizon": 60, "allowHeavy": true, "earlyRelease": true,
	  "tasks": [
	    {"name": "H", "weight": "8/11"},
	    {"name": "L", "weight": "3/11", "replicate": 2}
	  ]
	}`
	f, err := Parse([]byte(j))
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Misses()) != 0 {
		t.Errorf("misses: %v", s.Misses())
	}
	m, _ := s.Metrics("H")
	if m.Scheduled == 0 {
		t.Error("heavy task never ran")
	}
	// Without allowHeavy the same system is rejected.
	j2 := `{"m": 2, "policy": "oi", "horizon": 10, "tasks": [{"name": "H", "weight": "8/11"}]}`
	f2, err := Parse([]byte(j2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Run(); err == nil {
		t.Error("heavy task accepted without allowHeavy")
	}
}
