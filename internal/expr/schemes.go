package expr

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/frac"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/whisper"
)

// Scheme identifies one of the four scheduling approaches the paper's
// concluding remarks compare.
type Scheme int

const (
	SchemePD2OI Scheme = iota
	SchemePD2LJ
	SchemeGEDF
	SchemePEDF
)

func (s Scheme) String() string {
	switch s {
	case SchemePD2OI:
		return "PD2-OI"
	case SchemePD2LJ:
		return "PD2-LJ"
	case SchemeGEDF:
		return "GEDF"
	case SchemePEDF:
		return "PEDF"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// AllSchemes lists the compared schemes in presentation order.
var AllSchemes = []Scheme{SchemePD2OI, SchemePD2LJ, SchemeGEDF, SchemePEDF}

// EDFResult summarizes one EDF run against the *requested-weight* ideal,
// so the numbers are directly comparable with the PD² policies.
type EDFResult struct {
	PctIdeal     float64
	MinPctIdeal  float64
	MaxAbsDev    float64 // max over tasks of |ideal - completed| at the horizon
	MaxTardiness int64
	TardyJobs    int64
	Moves        int64
	Rejected     int64
}

// RunWhisperEDF runs the Whisper scenario under global (partitioned=false)
// or partitioned EDF. The ideal allocation is tracked at the requested
// weight from the moment of each request — the same I_PS reference the
// PD² policies are measured against.
func RunWhisperEDF(p whisper.Params, partitioned bool) (EDFResult, error) {
	sim, err := whisper.NewSimulation(p)
	if err != nil {
		return EDFResult{}, err
	}
	var s *edf.Scheduler
	if partitioned {
		s = edf.NewPartitioned(4)
	} else {
		s = edf.NewGlobal(4)
	}
	ideal := make(map[string]frac.Rat)   // requested-weight I_PS cumulative
	current := make(map[string]frac.Rat) // requested weight right now
	for _, spec := range sim.TaskSpecs() {
		if err := s.Join(spec.Name, spec.Weight); err != nil {
			return EDFResult{}, err
		}
		current[spec.Name] = spec.Weight
		ideal[spec.Name] = frac.Zero
	}
	var hookErr error
	s.RunTo(p.Horizon, func(t model.Time, s *edf.Scheduler) {
		for _, req := range sim.StepRequests(t) {
			current[req.Task] = req.Weight
			if err := s.Reweight(req.Task, req.Weight); err != nil && hookErr == nil {
				hookErr = err
			}
		}
		for name, w := range current {
			ideal[name] = ideal[name].Add(w)
		}
	})
	if hookErr != nil {
		return EDFResult{}, hookErr
	}

	var res EDFResult
	first := true
	var pctSum float64
	metrics := s.AllMetrics()
	for _, m := range metrics {
		id := ideal[m.Name].Float64()
		pct := 1.0
		if id > 0 {
			pct = float64(m.Done) / id
		}
		pctSum += pct
		if first || pct < res.MinPctIdeal {
			res.MinPctIdeal = pct
		}
		first = false
		if dev := abs(id - float64(m.Done)); dev > res.MaxAbsDev {
			res.MaxAbsDev = dev
		}
		if m.MaxTardiness > res.MaxTardiness {
			res.MaxTardiness = m.MaxTardiness
		}
		res.TardyJobs += m.TardyJobs
		res.Moves += m.Moves
		res.Rejected += m.Rejected
	}
	res.PctIdeal = pctSum / float64(len(metrics))
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// SchemeRow aggregates one scheme over repeated randomized runs.
type SchemeRow struct {
	Scheme       Scheme
	PctIdeal     stats.Summary
	MinPct       float64 // worst task of any run
	MaxDev       stats.Summary
	Moves        stats.Summary // migrations / repartitioning moves per run
	TardyJobs    stats.Summary // jobs past their deadline per run (EDF only)
	MaxTardiness int64         // worst over runs
	Rejected     stats.Summary // rejected reweights per run (PEDF only)
	Misses       int           // hard deadline misses (PD² policies)
}

// SchemeTable is the cross-scheme comparison of the paper's Sec. 6.
type SchemeTable struct {
	Title string
	Rows  []SchemeRow
}

// JSON renders the table as indented JSON.
func (t SchemeTable) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// TSV renders the table.
func (t SchemeTable) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# schemes: %s\n", t.Title)
	b.WriteString("scheme\tpct_ideal\tpct_ci98\tworst_pct\tmax_dev\tmoves\ttardy_jobs\tmax_tardiness\trejected\tmisses\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s\t%.5f\t%.5f\t%.5f\t%.3f\t%.1f\t%.1f\t%d\t%.1f\t%d\n",
			r.Scheme, r.PctIdeal.Mean, r.PctIdeal.CI98, r.MinPct, r.MaxDev.Mean,
			r.Moves.Mean, r.TardyJobs.Mean, r.MaxTardiness, r.Rejected.Mean, r.Misses)
	}
	return b.String()
}

// SchemeComparison runs the Whisper workload under all four schemes,
// reproducing the trade-off the paper describes: PD²-OI tracks the ideal
// with constant drift but migrates freely; PD²-LJ avoids reweighting
// machinery at the cost of accuracy; global EDF is accurate on average but
// allows tardiness; partitioned EDF cannot reweight fine-grained at all
// (rejections) though it never migrates on its own.
func SchemeComparison(p whisper.Params, o Options) (SchemeTable, error) {
	if o.Runs < 1 {
		return SchemeTable{}, fmt.Errorf("expr: need at least one run")
	}
	table := SchemeTable{Title: fmt.Sprintf("Whisper at %.1f m/s, radius %.2f m, occlusion=%v, %d runs",
		p.Speed, p.Radius, p.Occlusion, o.Runs)}
	for _, scheme := range AllSchemes {
		pcts := make([]float64, o.Runs)
		devs := make([]float64, o.Runs)
		moves := make([]float64, o.Runs)
		tardy := make([]float64, o.Runs)
		rejected := make([]float64, o.Runs)
		errs := make([]error, o.Runs)
		row := SchemeRow{Scheme: scheme, MinPct: 1e18}
		var mu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, o.workers())
		for i := 0; i < o.Runs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				pp := p
				pp.Seed = o.BaseSeed + uint64(i)
				switch scheme {
				case SchemePD2OI, SchemePD2LJ:
					kind := core.PolicyOI
					if scheme == SchemePD2LJ {
						kind = core.PolicyLJ
					}
					r, err := RunWhisper(pp, kind, nil)
					if err != nil {
						errs[i] = err
						return
					}
					pcts[i], devs[i] = r.PctIdeal, r.MaxAbsDrift
					moves[i] = float64(r.Migrations)
					mu.Lock()
					if r.MinPctIdeal < row.MinPct {
						row.MinPct = r.MinPctIdeal
					}
					row.Misses += r.Misses
					mu.Unlock()
				case SchemeGEDF, SchemePEDF:
					r, err := RunWhisperEDF(pp, scheme == SchemePEDF)
					if err != nil {
						errs[i] = err
						return
					}
					pcts[i], devs[i] = r.PctIdeal, r.MaxAbsDev
					moves[i] = float64(r.Moves)
					tardy[i] = float64(r.TardyJobs)
					rejected[i] = float64(r.Rejected)
					mu.Lock()
					if r.MinPctIdeal < row.MinPct {
						row.MinPct = r.MinPctIdeal
					}
					if r.MaxTardiness > row.MaxTardiness {
						row.MaxTardiness = r.MaxTardiness
					}
					mu.Unlock()
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return SchemeTable{}, fmt.Errorf("expr: %s: %w", scheme, err)
			}
		}
		row.PctIdeal = stats.Summarize(pcts)
		row.MaxDev = stats.Summarize(devs)
		row.Moves = stats.Summarize(moves)
		row.TardyJobs = stats.Summarize(tardy)
		row.Rejected = stats.Summarize(rejected)
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}
