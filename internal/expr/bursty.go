package expr

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// DefaultBurstProbs sweeps the fraction of weight changes that are abrupt
// jumps rather than one-level steps.
var DefaultBurstProbs = []float64{0, 0.1, 0.2, 0.4, 0.8}

// BurstyComparison evaluates PD²-OI and PD²-LJ on the abstract bursty
// workload (internal/workload) as the burstiness grows — checking that the
// paper's separation is a property of wide, abrupt share changes rather
// than of the Whisper geometry. Returns a figure with the % of ideal and
// maximum drift of both policies versus burst probability.
func BurstyComparison(o Options) (Figure, error) {
	if o.Runs < 1 {
		return Figure{}, fmt.Errorf("expr: need at least one run")
	}
	base := workload.DefaultParams()
	fig := Figure{
		ID: "bursty",
		Title: fmt.Sprintf("Bursty abstract workload (%d tasks, ladder %s..%s, dwell %.0f slots): OI vs LJ vs burstiness",
			base.Tasks, base.WMin, base.WMax, base.MeanDwell),
		XLabel: "burst_prob",
		YLabel: "mixed",
	}
	series := map[string]*Series{
		"PD2-OI_pct":   {Label: "PD2-OI_pct"},
		"PD2-LJ_pct":   {Label: "PD2-LJ_pct"},
		"PD2-OI_drift": {Label: "PD2-OI_drift"},
		"PD2-LJ_drift": {Label: "PD2-LJ_drift"},
	}
	for _, bp := range DefaultBurstProbs {
		for _, kind := range []core.PolicyKind{core.PolicyOI, core.PolicyLJ} {
			pcts := make([]float64, o.Runs)
			drifts := make([]float64, o.Runs)
			errs := make([]error, o.Runs)
			// Fixed worker pool (see RunCellCfg): o.workers() goroutines
			// pull run indices instead of spawning one goroutine per run.
			runCh := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < o.workers(); w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range runCh {
						p := base
						p.BurstProb = bp
						p.Seed = o.BaseSeed + uint64(i)
						gen, err := workload.New(p)
						if err != nil {
							errs[i] = err
							continue
						}
						res, err := RunWorkload(gen, p.M, p.Horizon, WhisperRunConfig{Kind: kind})
						if err != nil {
							errs[i] = err
							continue
						}
						if res.Misses != 0 {
							errs[i] = fmt.Errorf("bursty %v run %d: %d misses", kind, i, res.Misses)
							continue
						}
						pcts[i] = res.PctIdeal
						drifts[i] = res.MaxAbsDrift
					}
				}()
			}
			for i := 0; i < o.Runs; i++ {
				runCh <- i
			}
			close(runCh)
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return Figure{}, err
				}
			}
			pct := stats.Summarize(pcts)
			drift := stats.Summarize(drifts)
			ps := series[kind.String()+"_pct"]
			ps.X = append(ps.X, bp)
			ps.Mean = append(ps.Mean, pct.Mean)
			ps.CI = append(ps.CI, pct.CI98)
			ds := series[kind.String()+"_drift"]
			ds.X = append(ds.X, bp)
			ds.Mean = append(ds.Mean, drift.Mean)
			ds.CI = append(ds.CI, drift.CI98)
		}
	}
	for _, label := range []string{"PD2-OI_pct", "PD2-LJ_pct", "PD2-OI_drift", "PD2-LJ_drift"} {
		fig.Series = append(fig.Series, *series[label])
	}
	return fig, nil
}
