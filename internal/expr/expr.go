// Package expr contains the experiment harness that regenerates the
// paper's evaluation figures (Sec. 5, Fig. 11) and the hybrid ablation of
// the companion "efficiency versus accuracy" paper.
//
// Each experiment runs the Whisper scenario under PD²-OI and PD²-LJ (and,
// for the ablation, hybrids), repeating every configuration over many
// randomized speaker placements (the paper uses 61 runs) and reporting
// means with 98% confidence intervals.
package expr

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/frac"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/whisper"
)

// RunResult summarizes one simulation run.
type RunResult struct {
	// MaxAbsDrift is max over tasks of |drift(T, horizon)| — the paper's
	// "maximal drift of any task in the system at time 1,000".
	MaxAbsDrift float64
	// PeakAbsDrift is max over tasks and reweighting events of |drift|,
	// i.e. the worst drift seen at any point of the run.
	PeakAbsDrift float64
	// PctIdeal is the per-task average of A(S,T,0,h)/A(I_PS,T,0,h) — the
	// paper's "percent of ideal allocation". Can exceed 1 when the system
	// is not fully loaded.
	PctIdeal float64
	// MinPctIdeal is the worst single task's fraction of its ideal.
	MinPctIdeal float64
	// Initiations and Enactments count reweighting activity.
	Initiations int64
	Enactments  int64
	// OIEvents counts events routed to rules O/I (all of them under
	// PolicyOI, none under PolicyLJ, the chooser's picks under a hybrid).
	OIEvents int64
	// Misses counts deadline misses (must be 0 under PD²-OI and PD²-LJ).
	Misses int
	// Migrations and Preemptions aggregate the processor-assignment costs
	// across all tasks (the overheads the paper's Sec. 6 weighs Pfair
	// against partitioned/global EDF on).
	Migrations  int64
	Preemptions int64
	// OverheadSlots counts processor-slots consumed by reweighting
	// overhead when overhead modeling is enabled.
	OverheadSlots int64
}

// WhisperRunConfig parameterizes one Whisper run beyond the policy choice.
type WhisperRunConfig struct {
	Kind   core.PolicyKind
	Choose Chooser // hybrid chooser; nil means always rules O/I
	// Per-enactment processor-time costs, in quanta (see core.Config).
	OverheadOI frac.Rat
	OverheadLJ frac.Rat
}

// Chooser decides whether a hybrid handles an event with rules O/I.
type Chooser func(task string, from, to frac.Rat) bool

// ThresholdChooser routes an event to rules O/I when the absolute weight
// change is at least threshold. Threshold 0 always uses OI; a threshold
// above 1/2 never does (pure leave/join).
func ThresholdChooser(threshold float64) Chooser {
	return func(_ string, from, to frac.Rat) bool {
		return to.Sub(from).Abs().Float64() >= threshold
	}
}

// Workload is a source of adaptive demand: an initial task set plus a
// stream of per-slot weight-change requests. internal/whisper and
// internal/workload both implement it.
type Workload interface {
	TaskSpecs() []model.Spec
	StepRequests(t model.Time) []model.WeightRequest
}

// RunWhisper simulates one Whisper scenario under the given policy and
// returns its metrics. A nil chooser with PolicyHybrid means "always OI".
func RunWhisper(p whisper.Params, kind core.PolicyKind, choose Chooser) (RunResult, error) {
	return RunWhisperCfg(p, WhisperRunConfig{Kind: kind, Choose: choose})
}

// RunWhisperCfg is RunWhisper with overhead modeling.
func RunWhisperCfg(p whisper.Params, rc WhisperRunConfig) (RunResult, error) {
	sim, err := whisper.NewSimulation(p)
	if err != nil {
		return RunResult{}, err
	}
	return RunWorkload(sim, 4, p.Horizon, rc)
}

// RunWorkload simulates any adaptive workload on m processors under the
// given policy configuration.
func RunWorkload(w Workload, m int, horizon model.Time, rc WhisperRunConfig) (RunResult, error) {
	kind, choose := rc.Kind, rc.Choose
	var oiEvents int64
	var useOI func(task string, from, to frac.Rat) bool
	if kind == core.PolicyHybrid {
		useOI = func(task string, from, to frac.Rat) bool {
			ok := choose == nil || choose(task, from, to)
			if ok {
				oiEvents++
			}
			return ok
		}
	}
	sys := model.System{M: m, Tasks: w.TaskSpecs()}
	sched, err := core.New(core.Config{
		M:          m,
		Policy:     kind,
		UseOI:      useOI,
		Police:     true,
		OverheadOI: rc.OverheadOI,
		OverheadLJ: rc.OverheadLJ,
	}, sys)
	if err != nil {
		return RunResult{}, err
	}
	var initErr error
	sched.Run(horizon, func(t model.Time, s *core.Scheduler) {
		for _, req := range w.StepRequests(t) {
			if err := s.Initiate(req.Task, req.Weight); err != nil && initErr == nil {
				initErr = fmt.Errorf("t=%d task %s: %w", t, req.Task, err)
			}
		}
	})
	if initErr != nil {
		return RunResult{}, initErr
	}

	var res RunResult
	res.Misses = len(sched.Misses())
	first := true
	var pctSum float64
	metrics := sched.AllMetrics()
	for _, m := range metrics {
		d := m.Drift.Abs().Float64()
		if d > res.MaxAbsDrift {
			res.MaxAbsDrift = d
		}
		if pk := m.MaxAbsDrift.Float64(); pk > res.PeakAbsDrift {
			res.PeakAbsDrift = pk
		}
		pct := m.PercentOfIdeal()
		pctSum += pct
		if first || pct < res.MinPctIdeal {
			res.MinPctIdeal = pct
		}
		first = false
		res.Initiations += m.Initiations
		res.Enactments += m.Enactments
		res.Migrations += m.Migrations
		res.Preemptions += m.Preemptions
	}
	res.PctIdeal = pctSum / float64(len(metrics))
	res.OverheadSlots = sched.OverheadSlots()
	if kind == core.PolicyOI {
		res.OIEvents = res.Initiations
	} else {
		res.OIEvents = oiEvents
	}
	return res, nil
}

// Cell aggregates one (configuration, policy) point over repeated runs.
type Cell struct {
	MaxDrift      stats.Summary // of MaxAbsDrift
	PeakDrift     stats.Summary // of PeakAbsDrift
	PctIdeal      stats.Summary // of PctIdeal
	MinPct        float64       // worst MinPctIdeal over all runs
	Misses        int           // total over all runs
	OIShare       float64       // mean fraction of events routed to rules O/I
	OverheadSlots stats.Summary // of stolen processor-slots per run
}

// Options controls repetition and parallelism of the sweeps.
type Options struct {
	Runs     int    // randomized runs per point (paper: 61)
	BaseSeed uint64 // seed for run 0; run i uses BaseSeed + i
	Workers  int    // parallel workers; <= 0 means GOMAXPROCS
}

// DefaultOptions returns the paper's 61-run setup.
func DefaultOptions() Options {
	return Options{Runs: 61, BaseSeed: 1000}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunCell evaluates one configuration under one policy across o.Runs
// randomized placements, in parallel.
func RunCell(p whisper.Params, kind core.PolicyKind, choose Chooser, o Options) (Cell, error) {
	return RunCellCfg(p, WhisperRunConfig{Kind: kind, Choose: choose}, o)
}

// RunCellCfg is RunCell with overhead modeling.
func RunCellCfg(p whisper.Params, rc WhisperRunConfig, o Options) (Cell, error) {
	if o.Runs < 1 {
		return Cell{}, fmt.Errorf("expr: need at least one run")
	}
	results := make([]RunResult, o.Runs)
	errs := make([]error, o.Runs)
	// Fixed worker pool: exactly o.workers() goroutines pull run indices
	// from a channel. The previous version spawned one goroutine per run
	// and throttled with a semaphore, which allocates O(Runs) goroutine
	// stacks up front for large sweeps.
	runCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < o.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range runCh {
				pp := p
				pp.Seed = o.BaseSeed + uint64(i)
				results[i], errs[i] = RunWhisperCfg(pp, rc)
			}
		}()
	}
	for i := 0; i < o.Runs; i++ {
		runCh <- i
	}
	close(runCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Cell{}, err
		}
	}
	var cell Cell
	maxDrifts := make([]float64, o.Runs)
	peaks := make([]float64, o.Runs)
	pcts := make([]float64, o.Runs)
	overheads := make([]float64, o.Runs)
	var oiShare float64
	cell.MinPct = results[0].MinPctIdeal
	for i, r := range results {
		maxDrifts[i] = r.MaxAbsDrift
		peaks[i] = r.PeakAbsDrift
		pcts[i] = r.PctIdeal
		overheads[i] = float64(r.OverheadSlots)
		if r.MinPctIdeal < cell.MinPct {
			cell.MinPct = r.MinPctIdeal
		}
		cell.Misses += r.Misses
		if r.Initiations > 0 {
			oiShare += float64(r.OIEvents) / float64(r.Initiations)
		}
	}
	cell.MaxDrift = stats.Summarize(maxDrifts)
	cell.PeakDrift = stats.Summarize(peaks)
	cell.PctIdeal = stats.Summarize(pcts)
	cell.OverheadSlots = stats.Summarize(overheads)
	cell.OIShare = oiShare / float64(o.Runs)
	return cell, nil
}
