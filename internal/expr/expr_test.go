package expr

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frac"
	"repro/internal/whisper"
)

// testOptions keeps unit-test sweeps quick; the full 61-run figures are
// produced by cmd/reprofigs and the benchmarks.
var testOptions = Options{Runs: 8, BaseSeed: 1000}

func cellAt(t *testing.T, speed, radius float64, kind core.PolicyKind) Cell {
	t.Helper()
	p := whisper.DefaultParams()
	p.Speed = speed
	p.Radius = radius
	cell, err := RunCell(p, kind, nil, testOptions)
	if err != nil {
		t.Fatal(err)
	}
	return cell
}

// TestHeadlineSeparation pins the paper's Sec. 5 headline: "PD²-LJ
// completes at most 85% of the allocations in I_PS, while PD²-OI is always
// within 95% of I_PS." (Our substrate is synthetic, so the thresholds carry
// small margins; the ordering is the claim.)
func TestHeadlineSeparation(t *testing.T) {
	oi := cellAt(t, 2.9, 0.25, core.PolicyOI)
	lj := cellAt(t, 2.9, 0.25, core.PolicyLJ)

	if oi.Misses != 0 || lj.Misses != 0 {
		t.Fatalf("deadline misses: OI=%d LJ=%d", oi.Misses, lj.Misses)
	}
	if oi.PctIdeal.Mean < 0.95 {
		t.Errorf("PD²-OI mean %% of ideal = %.4f, want >= 0.95", oi.PctIdeal.Mean)
	}
	if oi.MinPct < 0.90 {
		t.Errorf("PD²-OI worst task %% of ideal = %.4f, want >= 0.90", oi.MinPct)
	}
	if lj.PctIdeal.Mean > 0.88 {
		t.Errorf("PD²-LJ mean %% of ideal = %.4f, want <= 0.88 at 2.9 m/s", lj.PctIdeal.Mean)
	}
	if oi.MaxDrift.Mean*3 > lj.MaxDrift.Mean {
		t.Errorf("drift separation too small: OI %.3f vs LJ %.3f", oi.MaxDrift.Mean, lj.MaxDrift.Mean)
	}
}

// TestLJDegradesWithSpeed pins the Fig. 11(a,b) trend: PD²-LJ's drift grows
// and its share of the ideal allocation shrinks as objects move faster,
// while PD²-OI stays close to ideal throughout.
func TestLJDegradesWithSpeed(t *testing.T) {
	slowLJ := cellAt(t, 0.5, 0.25, core.PolicyLJ)
	fastLJ := cellAt(t, 3.5, 0.25, core.PolicyLJ)
	if slowLJ.MaxDrift.Mean >= fastLJ.MaxDrift.Mean {
		t.Errorf("LJ drift did not grow with speed: %.3f -> %.3f", slowLJ.MaxDrift.Mean, fastLJ.MaxDrift.Mean)
	}
	if slowLJ.PctIdeal.Mean <= fastLJ.PctIdeal.Mean {
		t.Errorf("LJ %% of ideal did not shrink with speed: %.4f -> %.4f",
			slowLJ.PctIdeal.Mean, fastLJ.PctIdeal.Mean)
	}
	slowOI := cellAt(t, 0.5, 0.25, core.PolicyOI)
	fastOI := cellAt(t, 3.5, 0.25, core.PolicyOI)
	for _, c := range []Cell{slowOI, fastOI} {
		if c.MaxDrift.Mean > 2.5 {
			t.Errorf("OI drift %.3f too large (fine-grained reweighting should stay near constant)", c.MaxDrift.Mean)
		}
		if c.PctIdeal.Mean < 0.95 {
			t.Errorf("OI %% of ideal %.4f below 0.95", c.PctIdeal.Mean)
		}
	}
}

// TestHybridInterpolates: the hybrid at threshold 0 equals PD²-OI exactly,
// above the maximum weight it equals PD²-LJ exactly, and its accuracy
// degrades monotonically-ish in between (we check the endpoints and that a
// middle threshold lies between them).
func TestHybridInterpolates(t *testing.T) {
	p := whisper.DefaultParams()
	p.Speed = 2.9
	oi, err := RunCell(p, core.PolicyOI, nil, testOptions)
	if err != nil {
		t.Fatal(err)
	}
	lj, err := RunCell(p, core.PolicyLJ, nil, testOptions)
	if err != nil {
		t.Fatal(err)
	}
	h0, err := RunCell(p, core.PolicyHybrid, ThresholdChooser(0), testOptions)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := RunCell(p, core.PolicyHybrid, ThresholdChooser(1), testOptions)
	if err != nil {
		t.Fatal(err)
	}
	if h0.MaxDrift.Mean != oi.MaxDrift.Mean || h0.PctIdeal.Mean != oi.PctIdeal.Mean {
		t.Errorf("hybrid(0) != OI: drift %.4f vs %.4f", h0.MaxDrift.Mean, oi.MaxDrift.Mean)
	}
	if h1.MaxDrift.Mean != lj.MaxDrift.Mean || h1.PctIdeal.Mean != lj.PctIdeal.Mean {
		t.Errorf("hybrid(1) != LJ: drift %.4f vs %.4f", h1.MaxDrift.Mean, lj.MaxDrift.Mean)
	}
	if h0.OIShare != 1 || h1.OIShare != 0 {
		t.Errorf("OI shares: h0=%.2f h1=%.2f, want 1 and 0", h0.OIShare, h1.OIShare)
	}
	hm, err := RunCell(p, core.PolicyHybrid, ThresholdChooser(0.05), testOptions)
	if err != nil {
		t.Fatal(err)
	}
	if hm.OIShare <= 0 || hm.OIShare >= 1 {
		t.Errorf("middle threshold OI share = %.3f, want strictly between 0 and 1", hm.OIShare)
	}
	if hm.MaxDrift.Mean < h0.MaxDrift.Mean || hm.MaxDrift.Mean > h1.MaxDrift.Mean*1.2 {
		t.Errorf("middle threshold drift %.3f outside [OI=%.3f, ~LJ=%.3f]",
			hm.MaxDrift.Mean, h0.MaxDrift.Mean, h1.MaxDrift.Mean)
	}
}

func TestThresholdChooser(t *testing.T) {
	c := ThresholdChooser(0.1)
	if !c("x", frac.New(1, 10), frac.New(3, 10)) {
		t.Error("large change not routed to OI")
	}
	if c("x", frac.New(1, 10), frac.New(15, 100)) {
		t.Error("small change routed to OI")
	}
	if !c("x", frac.New(3, 10), frac.New(1, 10)) {
		t.Error("large decrease not routed to OI")
	}
	if !ThresholdChooser(0)("x", frac.New(1, 10), frac.New(1, 10)) {
		t.Error("threshold 0 should always use OI")
	}
}

// TestRunCellReproducible: identical options produce identical aggregates.
func TestRunCellReproducible(t *testing.T) {
	p := whisper.DefaultParams()
	p.Speed = 1.5
	a, err := RunCell(p, core.PolicyOI, nil, Options{Runs: 4, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(p, core.PolicyOI, nil, Options{Runs: 4, BaseSeed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxDrift.Mean != b.MaxDrift.Mean || a.PctIdeal.Mean != b.PctIdeal.Mean {
		t.Errorf("parallel and serial aggregates differ: %v vs %v", a.MaxDrift, b.MaxDrift)
	}
}

func TestRunCellValidation(t *testing.T) {
	if _, err := RunCell(whisper.DefaultParams(), core.PolicyOI, nil, Options{Runs: 0}); err == nil {
		t.Error("Runs=0 accepted")
	}
	p := whisper.DefaultParams()
	p.Radius = 2 // invalid geometry
	if _, err := RunCell(p, core.PolicyOI, nil, Options{Runs: 1}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestFigureGenerationSmall exercises the Fig. 11 and ablation generators
// end to end with tiny sweeps.
func TestFigureGenerationSmall(t *testing.T) {
	oldSpeeds, oldRadii, oldThs := DefaultSpeeds, DefaultRadii, DefaultThresholds
	DefaultSpeeds = []float64{0.5, 3.0}
	DefaultRadii = []float64{0.15, 0.40}
	DefaultThresholds = []float64{0, 1}
	defer func() { DefaultSpeeds, DefaultRadii, DefaultThresholds = oldSpeeds, oldRadii, oldThs }()

	o := Options{Runs: 3, BaseSeed: 50}
	a, b, err := Fig11AB(o)
	if err != nil {
		t.Fatal(err)
	}
	c, d, err := Fig11CD(o)
	if err != nil {
		t.Fatal(err)
	}
	h, err := HybridAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{a, b, c, d, h} {
		if len(fig.Series) == 0 {
			t.Fatalf("%s has no series", fig.ID)
		}
		tsv := fig.TSV()
		if !strings.HasPrefix(tsv, "# "+fig.ID) {
			t.Errorf("%s TSV header wrong:\n%s", fig.ID, tsv)
		}
		lines := strings.Split(strings.TrimSpace(tsv), "\n")
		if len(lines) != 2+len(fig.Series[0].X) {
			t.Errorf("%s TSV has %d lines, want %d", fig.ID, len(lines), 2+len(fig.Series[0].X))
		}
		for _, s := range fig.Series {
			if len(s.X) != len(s.Mean) || len(s.X) != len(s.CI) {
				t.Errorf("%s series %s ragged", fig.ID, s.Label)
			}
		}
	}
	// Fig. 11(a) must order LJ above OI at the fast end.
	var ljPole, oiPole Series
	for _, s := range a.Series {
		switch s.Label {
		case "PD2-LJ/pole":
			ljPole = s
		case "PD2-OI/pole":
			oiPole = s
		}
	}
	last := len(ljPole.Mean) - 1
	if ljPole.Mean[last] <= oiPole.Mean[last] {
		t.Errorf("fig11a: LJ drift %.3f not above OI %.3f at top speed", ljPole.Mean[last], oiPole.Mean[last])
	}
}

// TestGammaAblation: the OI-vs-LJ separation is driven by the weight
// dynamic range — with a flat cost map (gamma 1) leave/join loses little,
// while at the paper's two-orders-of-magnitude range it collapses.
func TestGammaAblation(t *testing.T) {
	old := DefaultGammas
	DefaultGammas = []float64{1, 3}
	defer func() { DefaultGammas = old }()
	fig, err := GammaAblation(Options{Runs: 6, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Series{}
	for _, s := range fig.Series {
		series[s.Label] = s
	}
	lj := series["PD2-LJ_pct"]
	oi := series["PD2-OI_pct"]
	if len(lj.Mean) != 2 || len(oi.Mean) != 2 {
		t.Fatalf("unexpected series shape: %+v", fig.Series)
	}
	if lj.Mean[1] >= lj.Mean[0] {
		t.Errorf("LJ %% of ideal should fall as the range widens: %.3f -> %.3f", lj.Mean[0], lj.Mean[1])
	}
	if oi.Mean[1] < 0.95 {
		t.Errorf("OI %% of ideal dropped to %.3f at wide range", oi.Mean[1])
	}
	gap0 := oi.Mean[0] - lj.Mean[0]
	gap1 := oi.Mean[1] - lj.Mean[1]
	if gap1 <= gap0 {
		t.Errorf("separation did not widen with dynamic range: %.3f -> %.3f", gap0, gap1)
	}
}

// TestOverheadTradeoff: with per-event costs charged, neither pure policy
// wins outright — the all-OI endpoint pays measurable overhead, the all-LJ
// endpoint pays none, and intermediate thresholds keep most of OI's
// accuracy at a fraction of its cost (the companion paper's thesis).
func TestOverheadTradeoff(t *testing.T) {
	old := DefaultThresholds
	DefaultThresholds = []float64{0, 0.05, 1}
	defer func() { DefaultThresholds = old }()
	fig, err := OverheadTradeoff(Options{Runs: 6, BaseSeed: 77})
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Series{}
	for _, s := range fig.Series {
		series[s.Label] = s
	}
	cost := series["overhead_slots"]
	pct := series["pct_ideal"]
	drift := series["max_drift"]
	if cost.Mean[0] <= cost.Mean[2] {
		t.Errorf("all-OI overhead %.1f not above all-LJ %.1f", cost.Mean[0], cost.Mean[2])
	}
	if cost.Mean[1] >= cost.Mean[0] {
		t.Errorf("hybrid overhead %.1f not below all-OI %.1f", cost.Mean[1], cost.Mean[0])
	}
	if drift.Mean[0] >= drift.Mean[2] {
		t.Errorf("all-OI drift %.2f not below all-LJ %.2f", drift.Mean[0], drift.Mean[2])
	}
	if pct.Mean[1] <= pct.Mean[2] {
		t.Errorf("hybrid accuracy %.3f not above all-LJ %.3f", pct.Mean[1], pct.Mean[2])
	}
}

// TestBurstyComparison: on the abstract workload the OI/LJ separation
// appears and widens with burstiness — it is not a Whisper artifact.
func TestBurstyComparison(t *testing.T) {
	old := DefaultBurstProbs
	DefaultBurstProbs = []float64{0, 0.8}
	defer func() { DefaultBurstProbs = old }()
	fig, err := BurstyComparison(Options{Runs: 8, BaseSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Series{}
	for _, s := range fig.Series {
		series[s.Label] = s
	}
	oi := series["PD2-OI_pct"]
	lj := series["PD2-LJ_pct"]
	ljd := series["PD2-LJ_drift"]
	oid := series["PD2-OI_drift"]
	for i := range oi.Mean {
		if oi.Mean[i] <= lj.Mean[i] {
			t.Errorf("burst=%.1f: OI %.3f not above LJ %.3f", oi.X[i], oi.Mean[i], lj.Mean[i])
		}
		if oid.Mean[i] >= ljd.Mean[i] {
			t.Errorf("burst=%.1f: OI drift %.2f not below LJ %.2f", oi.X[i], oid.Mean[i], ljd.Mean[i])
		}
	}
	if lj.Mean[1] >= lj.Mean[0] {
		t.Errorf("LJ accuracy did not degrade with burstiness: %.3f -> %.3f", lj.Mean[0], lj.Mean[1])
	}
}

// TestJSONExport: figures and scheme tables marshal to JSON with their
// exact numbers intact.
func TestJSONExport(t *testing.T) {
	fig := Figure{ID: "x", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "s", X: []float64{1}, Mean: []float64{2.5}, CI: []float64{0.1}}}}
	data, err := fig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Figure
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "x" || back.Series[0].Mean[0] != 2.5 {
		t.Errorf("round trip lost data: %+v", back)
	}
	table := SchemeTable{Title: "tt", Rows: []SchemeRow{{Scheme: SchemePD2OI, MinPct: 0.9}}}
	data, err = table.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var tback SchemeTable
	if err := json.Unmarshal(data, &tback); err != nil {
		t.Fatal(err)
	}
	if tback.Rows[0].MinPct != 0.9 {
		t.Errorf("table round trip lost data: %+v", tback)
	}
}
