package expr

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/frac"
	"repro/internal/stats"
	"repro/internal/whisper"
)

// Series is one labeled curve of a figure: mean values with 98% CI
// half-widths at each x.
type Series struct {
	Label string
	X     []float64
	Mean  []float64
	CI    []float64
}

// Figure is a reproduced evaluation figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// JSON renders the figure as indented JSON (exact means and confidence
// intervals, for downstream plotting).
func (f Figure) JSON() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}

// TSV renders the figure as a tab-separated table: one row per x, one
// mean/ci column pair per series.
func (f Figure) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\t%s\t%s_ci98", s.Label, s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(&b, "%.3g", f.Series[0].X[i])
		for _, s := range f.Series {
			fmt.Fprintf(&b, "\t%.5f\t%.5f", s.Mean[i], s.CI[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DefaultSpeeds matches the paper's Fig. 11(a,b) sweep: 0.5-3.5 m/s
// ("such speeds typify human motion").
var DefaultSpeeds = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5}

// DefaultRadii matches Fig. 11(c,d): 10-50 cm from the room center. The
// room is 1m x 1m, so the orbit must stay strictly inside; 48 cm stands in
// for the paper's 50 cm end point.
var DefaultRadii = []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.48}

// policyCurve identifies one curve of the Fig. 11 family.
type policyCurve struct {
	label     string
	kind      core.PolicyKind
	occlusion bool
}

var fig11Curves = []policyCurve{
	{"PD2-LJ/pole", core.PolicyLJ, true},
	{"PD2-LJ/no-pole", core.PolicyLJ, false},
	{"PD2-OI/pole", core.PolicyOI, true},
	{"PD2-OI/no-pole", core.PolicyOI, false},
}

// sweep evaluates the four Fig. 11 curves over the given values of a
// parameter, returning cells indexed [curve][point].
func sweep(base whisper.Params, xs []float64, set func(*whisper.Params, float64), o Options) ([][]Cell, error) {
	cells := make([][]Cell, len(fig11Curves))
	for ci, curve := range fig11Curves {
		cells[ci] = make([]Cell, len(xs))
		for xi, x := range xs {
			p := base
			p.Occlusion = curve.occlusion
			set(&p, x)
			cell, err := RunCell(p, curve.kind, nil, o)
			if err != nil {
				return nil, fmt.Errorf("expr: %s at %v: %w", curve.label, x, err)
			}
			if cell.Misses != 0 {
				return nil, fmt.Errorf("expr: %s at %v: %d deadline misses (Theorem 2 violated)", curve.label, x, cell.Misses)
			}
			cells[ci][xi] = cell
		}
	}
	return cells, nil
}

func buildFigure(id, title, xlabel, ylabel string, xs []float64, cells [][]Cell, pick func(Cell) stats.Summary) Figure {
	fig := Figure{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel}
	for ci, curve := range fig11Curves {
		s := Series{Label: curve.label}
		for xi, x := range xs {
			sum := pick(cells[ci][xi])
			s.X = append(s.X, x)
			s.Mean = append(s.Mean, sum.Mean)
			s.CI = append(s.CI, sum.CI98)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig11AB reproduces Fig. 11(a) (maximum drift at t=1000 vs. object speed)
// and Fig. 11(b) (percent of ideal allocation vs. object speed) from one
// sweep at 25cm radius.
func Fig11AB(o Options) (a, b Figure, err error) {
	base := whisper.DefaultParams()
	base.Radius = 0.25
	cells, err := sweep(base, DefaultSpeeds, func(p *whisper.Params, x float64) { p.Speed = x }, o)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	a = buildFigure("fig11a", "Maximum drift at t=1000 vs object speed (radius 25cm)",
		"speed_m_per_s", "max |drift| (quanta)", DefaultSpeeds, cells,
		func(c Cell) stats.Summary { return c.MaxDrift })
	b = buildFigure("fig11b", "Percent of ideal (I_PS) allocation vs object speed (radius 25cm)",
		"speed_m_per_s", "mean A(S)/A(I_PS)", DefaultSpeeds, cells,
		func(c Cell) stats.Summary { return c.PctIdeal })
	return a, b, nil
}

// Fig11CD reproduces Fig. 11(c) (maximum drift vs. radius of rotation) and
// Fig. 11(d) (percent of ideal allocation vs. radius) at 2.9 m/s.
func Fig11CD(o Options) (c, d Figure, err error) {
	base := whisper.DefaultParams()
	base.Speed = 2.9
	cells, err := sweep(base, DefaultRadii, func(p *whisper.Params, x float64) { p.Radius = x }, o)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	c = buildFigure("fig11c", "Maximum drift at t=1000 vs radius of rotation (speed 2.9 m/s)",
		"radius_m", "max |drift| (quanta)", DefaultRadii, cells,
		func(cl Cell) stats.Summary { return cl.MaxDrift })
	d = buildFigure("fig11d", "Percent of ideal (I_PS) allocation vs radius of rotation (speed 2.9 m/s)",
		"radius_m", "mean A(S)/A(I_PS)", DefaultRadii, cells,
		func(cl Cell) stats.Summary { return cl.PctIdeal })
	return c, d, nil
}

// DefaultGammas is the cost-model ablation sweep: the exponent that maps
// distance to correlation cost, controlling the dynamic range of task
// weights (the paper reports Whisper's costs vary by roughly two orders of
// magnitude; our default Gamma=3 realizes that).
var DefaultGammas = []float64{1, 1.5, 2, 2.5, 3, 3.5}

// GammaAblation evaluates the sensitivity of the OI-vs-LJ separation to the
// cost model's dynamic range: with a flat weight map (gamma 1) leave/join
// is nearly as good as the fine-grained rules; as the weight range widens
// toward the paper's two orders of magnitude, PD²-LJ collapses while PD²-OI
// stays near the ideal. This is the ablation for the main calibration
// choice documented in DESIGN.md.
func GammaAblation(o Options) (Figure, error) {
	base := whisper.DefaultParams()
	base.Speed = 2.9
	fig := Figure{
		ID:     "gamma",
		Title:  "Cost-model ablation at 2.9 m/s: % of ideal vs weight-map exponent",
		XLabel: "gamma",
		YLabel: "mean A(S)/A(I_PS)",
	}
	oiPct := Series{Label: "PD2-OI_pct"}
	ljPct := Series{Label: "PD2-LJ_pct"}
	ljDrift := Series{Label: "PD2-LJ_drift"}
	for _, g := range DefaultGammas {
		p := base
		p.Gamma = g
		// Rescale alpha so the weight at the far end of the room stays at
		// the cap: alpha * dmax^gamma = 1/3 with dmax ~ 1.9 (occluded).
		p.Alpha = (1.0 / 3.0) / math.Pow(1.9, g)
		oi, err := RunCell(p, core.PolicyOI, nil, o)
		if err != nil {
			return Figure{}, err
		}
		lj, err := RunCell(p, core.PolicyLJ, nil, o)
		if err != nil {
			return Figure{}, err
		}
		if oi.Misses+lj.Misses != 0 {
			return Figure{}, fmt.Errorf("expr: gamma %v: misses", g)
		}
		oiPct.X = append(oiPct.X, g)
		oiPct.Mean = append(oiPct.Mean, oi.PctIdeal.Mean)
		oiPct.CI = append(oiPct.CI, oi.PctIdeal.CI98)
		ljPct.X = append(ljPct.X, g)
		ljPct.Mean = append(ljPct.Mean, lj.PctIdeal.Mean)
		ljPct.CI = append(ljPct.CI, lj.PctIdeal.CI98)
		ljDrift.X = append(ljDrift.X, g)
		ljDrift.Mean = append(ljDrift.Mean, lj.MaxDrift.Mean)
		ljDrift.CI = append(ljDrift.CI, lj.MaxDrift.CI98)
	}
	fig.Series = []Series{oiPct, ljPct, ljDrift}
	return fig, nil
}

// Overhead costs for the efficiency-versus-accuracy ablation, in quanta
// per enacted event. The paper measured ~5µs per decision against a 1ms
// quantum (≈1/200 of a quantum) and deemed it negligible; Sec. 6 notes
// PD²-OI's reweighting work is asymptotically heavier than PD²-LJ's
// (Ω(max(N, M log N)) vs O(M log N)). The ablation exaggerates the costs
// (and the OI/LJ cost ratio) so the trade-off is visible at the Whisper
// scale.
var (
	OverheadCostOI = frac.New(1, 25)  // per rules-O/I enactment
	OverheadCostLJ = frac.New(1, 250) // per leave/join enactment
)

// OverheadTradeoff is the headline experiment of the companion "Task
// Reweighting on Multiprocessors: Efficiency versus Accuracy" paper: sweep
// the hybrid threshold with per-event reweighting costs charged against
// the processors. Pure PD²-OI buys accuracy with overhead; pure PD²-LJ is
// cheap but drifts; intermediate hybrids balance the two.
func OverheadTradeoff(o Options) (Figure, error) {
	base := whisper.DefaultParams()
	base.Speed = 2.9
	base.Radius = 0.25
	fig := Figure{
		ID: "overhead",
		Title: fmt.Sprintf("Efficiency vs accuracy: hybrid threshold sweep with per-event costs OI=%s, LJ=%s quanta",
			OverheadCostOI, OverheadCostLJ),
		XLabel: "oi_threshold",
		YLabel: "mixed",
	}
	pct := Series{Label: "pct_ideal"}
	drift := Series{Label: "max_drift"}
	cost := Series{Label: "overhead_slots"}
	for _, th := range DefaultThresholds {
		cell, err := RunCellCfg(base, WhisperRunConfig{
			Kind:       core.PolicyHybrid,
			Choose:     ThresholdChooser(th),
			OverheadOI: OverheadCostOI,
			OverheadLJ: OverheadCostLJ,
		}, o)
		if err != nil {
			return Figure{}, err
		}
		if cell.Misses != 0 {
			return Figure{}, fmt.Errorf("expr: overhead threshold %v: %d misses", th, cell.Misses)
		}
		pct.X = append(pct.X, th)
		pct.Mean = append(pct.Mean, cell.PctIdeal.Mean)
		pct.CI = append(pct.CI, cell.PctIdeal.CI98)
		drift.X = append(drift.X, th)
		drift.Mean = append(drift.Mean, cell.MaxDrift.Mean)
		drift.CI = append(drift.CI, cell.MaxDrift.CI98)
		cost.X = append(cost.X, th)
		cost.Mean = append(cost.Mean, cell.OverheadSlots.Mean)
		cost.CI = append(cost.CI, cell.OverheadSlots.CI98)
	}
	fig.Series = []Series{pct, drift, cost}
	return fig, nil
}

// DefaultThresholds is the hybrid ablation sweep: 0 routes every event to
// rules O/I (pure PD²-OI behaviour), 1 routes none (pure PD²-LJ).
var DefaultThresholds = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 1}

// HybridAblation evaluates the efficiency-versus-accuracy knob of the
// companion paper: a hybrid that applies the (more expensive) rules O/I
// only to weight changes of magnitude at least the threshold, falling back
// to leave/join otherwise. Returns one figure with three series: maximum
// drift, percent of ideal, and the fraction of events routed to O/I.
func HybridAblation(o Options) (Figure, error) {
	base := whisper.DefaultParams()
	base.Speed = 2.9
	base.Radius = 0.25
	fig := Figure{
		ID:     "hybrid",
		Title:  "Hybrid OI/LJ ablation at 2.9 m/s, radius 25cm (threshold = min |Δw| handled by rules O/I)",
		XLabel: "oi_threshold",
		YLabel: "mixed",
	}
	drift := Series{Label: "max_drift"}
	pct := Series{Label: "pct_ideal"}
	share := Series{Label: "oi_event_share"}
	for _, th := range DefaultThresholds {
		cell, err := RunCell(base, core.PolicyHybrid, ThresholdChooser(th), o)
		if err != nil {
			return Figure{}, err
		}
		if cell.Misses != 0 {
			return Figure{}, fmt.Errorf("expr: hybrid threshold %v: %d misses", th, cell.Misses)
		}
		drift.X = append(drift.X, th)
		drift.Mean = append(drift.Mean, cell.MaxDrift.Mean)
		drift.CI = append(drift.CI, cell.MaxDrift.CI98)
		pct.X = append(pct.X, th)
		pct.Mean = append(pct.Mean, cell.PctIdeal.Mean)
		pct.CI = append(pct.CI, cell.PctIdeal.CI98)
		share.X = append(share.X, th)
		share.Mean = append(share.Mean, cell.OIShare)
		share.CI = append(share.CI, 0)
	}
	fig.Series = []Series{drift, pct, share}
	return fig, nil
}
