package expr

import (
	"strings"
	"testing"

	"repro/internal/whisper"
)

func TestSchemeComparison(t *testing.T) {
	p := whisper.DefaultParams()
	p.Speed = 2.9
	table, err := SchemeComparison(p, Options{Runs: 6, BaseSeed: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	byScheme := map[Scheme]SchemeRow{}
	for _, r := range table.Rows {
		byScheme[r.Scheme] = r
	}
	oi := byScheme[SchemePD2OI]
	lj := byScheme[SchemePD2LJ]
	gedf := byScheme[SchemeGEDF]
	pedf := byScheme[SchemePEDF]

	// The paper's trade-offs:
	// PD²-OI is the most accurate and misses nothing.
	if oi.Misses != 0 || lj.Misses != 0 {
		t.Errorf("PD² policies missed deadlines: %d/%d", oi.Misses, lj.Misses)
	}
	if oi.PctIdeal.Mean < lj.PctIdeal.Mean {
		t.Errorf("OI (%.3f) should beat LJ (%.3f) on accuracy", oi.PctIdeal.Mean, lj.PctIdeal.Mean)
	}
	if oi.MaxDev.Mean >= lj.MaxDev.Mean {
		t.Errorf("OI deviation (%.3f) should be below LJ (%.3f)", oi.MaxDev.Mean, lj.MaxDev.Mean)
	}
	// Pfair migrates more than partitioned EDF repartitions (on this light
	// load PEDF rarely has to move at all — that is its selling point).
	if oi.Moves.Mean <= pedf.Moves.Mean {
		t.Errorf("expected Pfair migrations (%.1f) above PEDF moves (%.1f)", oi.Moves.Mean, pedf.Moves.Mean)
	}
	// Partitioned EDF on a feasible partition never goes tardy.
	if pedf.MaxTardiness != 0 {
		t.Errorf("PEDF tardy by %d on a feasible partition", pedf.MaxTardiness)
	}
	// GEDF stays accurate on share (its weakness is tardiness under
	// pressure, not average allocation).
	if gedf.PctIdeal.Mean < 0.9 {
		t.Errorf("GEDF pct = %.3f unexpectedly low", gedf.PctIdeal.Mean)
	}

	tsv := table.TSV()
	if !strings.Contains(tsv, "PD2-OI") || !strings.Contains(tsv, "PEDF") {
		t.Errorf("TSV malformed:\n%s", tsv)
	}
	if len(strings.Split(strings.TrimSpace(tsv), "\n")) != 6 {
		t.Errorf("TSV line count wrong:\n%s", tsv)
	}
}

func TestSchemeString(t *testing.T) {
	if SchemePD2OI.String() != "PD2-OI" || SchemeGEDF.String() != "GEDF" || SchemePEDF.String() != "PEDF" || SchemePD2LJ.String() != "PD2-LJ" {
		t.Error("scheme names wrong")
	}
}
