package workgen

import (
	"fmt"
	"strconv"

	"repro/internal/frac"
	"repro/internal/stats"
)

// Pathological client templates. Each template is a deterministic
// command stream (given an RNG) that drives the daemon into one of its
// degradation regimes; internal/serve's pd2d_anomaly_* counters measure
// whether the degradation is graceful. A template may provoke admission
// rejections by design — that is the point of camp and flood — but no
// template may ever cause a failed apply or a violated invariant: an
// admitted command always eventually applies cleanly.

// Template enumerates the pathological client behaviours.
//
//lint:exhaustive ignore=numTemplates -- sentinel counts the templates, it is not one
type Template uint8

const (
	// TemplateReweightStorm hammers one task with abrupt wide-range
	// reweights (1/64 <-> 31/64), the paper's worst-case adaptation
	// pattern: scheduling weight transients pile up and drift is pushed
	// toward its bound, but property (W) holds throughout.
	TemplateReweightStorm Template = iota
	// TemplateChurn cycles join/leave/reweight over a window of
	// short-lived tasks, exercising rule-L deferred leaves and the
	// never-reuse-a-name admission rule.
	TemplateChurn
	// TemplateAdmissionCamp fills requested weight to M - 1/64 and then
	// floods joins at 1/32 forever: every one must be rejected with 409
	// and headroom, and the rejection-rate anomaly counter must fire.
	TemplateAdmissionCamp
	// TemplateHeavyFlood joins a fresh task at the maximum light weight
	// (1/2) on every command: the first 2M fill the shard, the rest are
	// rejected. Admitted weight must cap exactly at M.
	TemplateHeavyFlood

	numTemplates // number of templates; keep last
)

// templateNames is indexed by Template and doubles as the CLI spelling.
var templateNames = [numTemplates]string{
	TemplateReweightStorm: "reweight-storm",
	TemplateChurn:         "join-leave-churn",
	TemplateAdmissionCamp: "admission-camp",
	TemplateHeavyFlood:    "heavy-flood",
}

func (t Template) String() string {
	if t < numTemplates {
		return templateNames[t]
	}
	return fmt.Sprintf("Template(%d)", uint8(t))
}

// TemplateNames returns the template names in declaration order.
func TemplateNames() []string {
	return append([]string(nil), templateNames[:]...)
}

// TemplateByName resolves a CLI spelling.
func TemplateByName(name string) (Template, error) {
	for i, n := range templateNames {
		if n == name {
			return Template(i), nil
		}
	}
	return 0, fmt.Errorf("workgen: unknown template %q (templates: %s, %s, %s, %s)",
		name, TemplateReweightStorm, TemplateChurn, TemplateAdmissionCamp, TemplateHeavyFlood)
}

// ExpectsRejections reports whether the template provokes admission
// rejections by design (so a strict audit should tolerate 409s).
func (t Template) ExpectsRejections() bool {
	switch t { // exhaustive: each template declares its rejection contract (eventexhaust)
	case TemplateReweightStorm:
		return false
	case TemplateChurn:
		// Churn stays within its validated weight envelope, but a leave
		// racing a slot boundary can briefly conflict; tolerate 409s.
		return true
	case TemplateAdmissionCamp, TemplateHeavyFlood:
		return true
	default:
		panic(fmt.Sprintf("workgen: unhandled template %d", uint8(t)))
	}
}

// A Cmd is one generated client command. Only join, leave, and reweight
// are ever generated (the daemon's wire vocabulary).
type Cmd struct {
	Op     TraceOp
	Task   string
	Weight frac.Rat // join weight or reweight target; zero for leave
}

// churnWindow bounds the live short-lived tasks a churn stream keeps;
// the validation envelope below depends on it.
const churnWindow = 8

// TemplateStream generates one shard's command stream for a template.
// It is deterministic in (template, rng, prefix) and single-goroutine.
// The caller owns the pacing: emit Setup, advance the shard so the
// setup joins apply, then alternate Next batches with advances, calling
// Advanced after each advance so the stream knows which of its joins
// have been flushed (a join must apply before it can be reweighted or
// left).
type TemplateStream struct {
	t      Template
	rng    *stats.RNG
	prefix string
	m      int
	tasks  int

	step  int      // commands generated so far
	fresh []string // churn tasks joined since the last Advanced
	ready []string // churn tasks whose joins have been flushed
	seq   int      // fresh-name counter
}

// NewTemplateStream validates the (template, m, tasks) envelope and
// builds a stream. prefix namespaces generated task names; distinct
// workers sharing a shard must use distinct prefixes (names are burned
// forever). tasks is the anchor-set size for storm and churn and is
// ignored by camp and flood.
func NewTemplateStream(t Template, rng *stats.RNG, prefix string, m, tasks int) (*TemplateStream, error) {
	if t >= numTemplates {
		return nil, fmt.Errorf("workgen: unknown template %d", uint8(t))
	}
	if m < 1 {
		return nil, fmt.Errorf("workgen: template %s needs m >= 1, got %d", t, m)
	}
	if tasks < 1 {
		return nil, fmt.Errorf("workgen: template %s needs tasks >= 1, got %d", t, tasks)
	}
	switch t { // exhaustive: each template validates its weight envelope (eventexhaust)
	case TemplateReweightStorm:
		// Anchors at 1/64 plus the storm task at up to 31/64 must fit M.
		if tasks+30 > 64*m {
			return nil, fmt.Errorf("workgen: template %s with %d tasks exceeds m=%d (needs tasks <= 64m-30)", t, tasks, m)
		}
	case TemplateChurn:
		// Anchors plus the churn window (joins at 2/64, plus as many
		// leaves still counted until their flush) must fit M.
		if tasks+4*churnWindow > 64*m {
			return nil, fmt.Errorf("workgen: template %s with %d tasks exceeds m=%d (needs tasks <= 64m-%d)",
				t, tasks, m, 4*churnWindow)
		}
	case TemplateAdmissionCamp, TemplateHeavyFlood:
		// Camp derives its set from m; flood is all fresh joins.
	default:
		panic(fmt.Sprintf("workgen: unhandled template %d", uint8(t)))
	}
	return &TemplateStream{t: t, rng: rng, prefix: prefix, m: m, tasks: tasks}, nil
}

// sixtyFourths builds num/64 in lowest terms.
func sixtyFourths(num int64) frac.Rat { return frac.New(num, 64) }

// Setup appends the template's initial joins to dst. The caller must
// advance the shard once after posting them (joins apply at the next
// slot boundary) before asking for Next batches.
func (ts *TemplateStream) Setup(dst []Cmd) []Cmd {
	switch ts.t { // exhaustive: per-template setup (eventexhaust)
	case TemplateReweightStorm, TemplateChurn:
		for i := 0; i < ts.tasks; i++ {
			dst = append(dst, Cmd{Op: TraceJoin, Task: ts.anchor(i), Weight: sixtyFourths(1)})
		}
	case TemplateAdmissionCamp:
		// 2M-1 campers at 1/2 and one at 31/64: requested weight lands on
		// M - 1/64, so nothing at or above 1/32 can ever join again.
		for i := 0; i < 2*ts.m-1; i++ {
			dst = append(dst, Cmd{Op: TraceJoin, Task: ts.anchor(i), Weight: frac.Half})
		}
		dst = append(dst, Cmd{Op: TraceJoin, Task: ts.anchor(2*ts.m - 1), Weight: sixtyFourths(31)})
	case TemplateHeavyFlood:
		// No setup: the flood itself fills the shard.
	default:
		panic(fmt.Sprintf("workgen: unhandled template %d", uint8(ts.t)))
	}
	return dst
}

// Next appends n generated commands to dst.
func (ts *TemplateStream) Next(dst []Cmd, n int) []Cmd {
	for i := 0; i < n; i++ {
		dst = ts.one(dst)
		ts.step++
	}
	return dst
}

func (ts *TemplateStream) one(dst []Cmd) []Cmd {
	switch ts.t { // exhaustive: per-template generation (eventexhaust)
	case TemplateReweightStorm:
		// Slam the storm task back and forth across the light-weight
		// range; odd steps land on a jittered low target so consecutive
		// swings differ.
		target := sixtyFourths(31)
		if ts.step%2 == 1 {
			target = sixtyFourths(1 + int64(ts.rng.Bounded(4)))
		}
		return append(dst, Cmd{Op: TraceReweight, Task: ts.anchor(0), Weight: target})
	case TemplateChurn:
		switch ts.step % 3 {
		case 0:
			if len(ts.fresh)+len(ts.ready) < churnWindow {
				return ts.churnJoin(dst)
			}
			return ts.churnLeave(dst)
		case 1:
			if len(ts.ready) > 0 {
				return ts.churnLeave(dst)
			}
			return ts.churnJoin(dst)
		default:
			a := ts.anchor(ts.rng.Bounded(ts.tasks))
			return append(dst, Cmd{Op: TraceReweight, Task: a, Weight: sixtyFourths(1 + int64(ts.rng.Bounded(2)))})
		}
	case TemplateAdmissionCamp:
		// The shard is camped at M - 1/64; every 1/32 join must bounce.
		return append(dst, Cmd{Op: TraceJoin, Task: ts.freshName(), Weight: frac.New(1, 32)})
	case TemplateHeavyFlood:
		return append(dst, Cmd{Op: TraceJoin, Task: ts.freshName(), Weight: frac.Half})
	default:
		panic(fmt.Sprintf("workgen: unhandled template %d", uint8(ts.t)))
	}
}

func (ts *TemplateStream) churnJoin(dst []Cmd) []Cmd {
	if len(ts.fresh)+len(ts.ready) >= churnWindow {
		// Window full and nothing ready to leave: skip to a reweight so
		// the envelope bound holds unconditionally.
		a := ts.anchor(ts.rng.Bounded(ts.tasks))
		return append(dst, Cmd{Op: TraceReweight, Task: a, Weight: sixtyFourths(1 + int64(ts.rng.Bounded(2)))})
	}
	name := ts.freshName()
	ts.fresh = append(ts.fresh, name)
	return append(dst, Cmd{Op: TraceJoin, Task: name, Weight: sixtyFourths(2)})
}

func (ts *TemplateStream) churnLeave(dst []Cmd) []Cmd {
	if len(ts.ready) == 0 {
		return ts.churnJoin(dst)
	}
	name := ts.ready[0]
	ts.ready = ts.ready[1:]
	return append(dst, Cmd{Op: TraceLeave, Task: name})
}

// Advanced tells the stream the shard advanced a slot boundary: every
// join posted before the advance has been flushed (or queued for
// deferred application — either way its admission entry exists and is
// no longer pending), so those tasks may now be left.
func (ts *TemplateStream) Advanced() {
	ts.ready = append(ts.ready, ts.fresh...)
	ts.fresh = ts.fresh[:0]
}

func (ts *TemplateStream) anchor(i int) string {
	return ts.prefix + "-a" + strconv.Itoa(i)
}

func (ts *TemplateStream) freshName() string {
	name := ts.prefix + "-c" + strconv.Itoa(ts.seq)
	ts.seq++
	return name
}
