package workgen

import (
	"strings"
	"testing"

	"repro/internal/frac"
	"repro/internal/stats"
)

// TestTemplateNames pins name round-tripping and the rejection contract.
func TestTemplateNames(t *testing.T) {
	names := TemplateNames()
	if len(names) != int(numTemplates) {
		t.Fatalf("%d names for %d templates", len(names), numTemplates)
	}
	for _, name := range names {
		tmpl, err := TemplateByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tmpl.String() != name {
			t.Errorf("%s round-trips to %s", name, tmpl)
		}
	}
	if _, err := TemplateByName("nope"); err == nil {
		t.Error("unknown template accepted")
	}
	if TemplateReweightStorm.ExpectsRejections() {
		t.Error("reweight-storm must stay admission-clean")
	}
	for _, tmpl := range []Template{TemplateChurn, TemplateAdmissionCamp, TemplateHeavyFlood} {
		if !tmpl.ExpectsRejections() {
			t.Errorf("%s should expect rejections", tmpl)
		}
	}
}

// TestTemplateEnvelopes checks the (m, tasks) validation.
func TestTemplateEnvelopes(t *testing.T) {
	rng := stats.NewStream(1, 0)
	if _, err := NewTemplateStream(TemplateReweightStorm, rng, "P", 1, 34); err != nil {
		t.Errorf("storm m=1 tasks=34 should fit (34+30=64): %v", err)
	}
	if _, err := NewTemplateStream(TemplateReweightStorm, rng, "P", 1, 35); err == nil {
		t.Error("storm m=1 tasks=35 should exceed the envelope")
	}
	if _, err := NewTemplateStream(TemplateChurn, rng, "P", 1, 33); err == nil {
		t.Error("churn m=1 tasks=33 should exceed the envelope")
	}
	if _, err := NewTemplateStream(TemplateAdmissionCamp, rng, "P", 1, 1000); err != nil {
		t.Errorf("camp ignores tasks: %v", err)
	}
	if _, err := NewTemplateStream(Template(200), rng, "P", 4, 4); err == nil {
		t.Error("out-of-range template accepted")
	}
}

// TestCampSetupWeights checks the camp setup requests exactly M - 1/64.
func TestCampSetupWeights(t *testing.T) {
	for m := 1; m <= 8; m++ {
		ts, err := NewTemplateStream(TemplateAdmissionCamp, stats.NewStream(1, 0), "P", m, 1)
		if err != nil {
			t.Fatal(err)
		}
		setup := ts.Setup(nil)
		if len(setup) != 2*m {
			t.Fatalf("m=%d: %d setup joins, want %d", m, len(setup), 2*m)
		}
		total := frac.Rat{}
		for _, c := range setup {
			if c.Op != TraceJoin {
				t.Fatalf("m=%d: setup op %v", m, c.Op)
			}
			total = total.Add(c.Weight)
		}
		want := frac.FromInt(int64(m)).Sub(frac.New(1, 64))
		if total != want {
			t.Errorf("m=%d: camp requests %s, want %s", m, total, want)
		}
		// Every camping join afterwards must be a 1/32 join — over the
		// remaining 1/64 headroom, so the server must 409 all of them.
		next := ts.Next(nil, 10)
		for _, c := range next {
			if c.Op != TraceJoin || c.Weight != frac.New(1, 32) {
				t.Errorf("m=%d: camp emitted %+v", m, c)
			}
		}
	}
}

// TestStormAlternates checks the storm slams between 31/64 and a low
// target on strictly alternating steps against a single task.
func TestStormAlternates(t *testing.T) {
	ts, err := NewTemplateStream(TemplateReweightStorm, stats.NewStream(1, 0), "P", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cmds := ts.Next(nil, 64)
	high := frac.New(31, 64)
	for i, c := range cmds {
		if c.Op != TraceReweight || c.Task != "P-a0" {
			t.Fatalf("step %d: %+v", i, c)
		}
		if i%2 == 0 && c.Weight != high {
			t.Errorf("even step %d: weight %s, want 31/64", i, c.Weight)
		}
		if i%2 == 1 && !c.Weight.Less(frac.New(5, 64)) {
			t.Errorf("odd step %d: weight %s, want < 5/64", i, c.Weight)
		}
	}
}

// TestChurnStreamInvariants checks the churn stream never leaves a task
// before Advanced confirmed its join, never reuses a name, and stays
// inside the churn window.
func TestChurnStreamInvariants(t *testing.T) {
	ts, err := NewTemplateStream(TemplateChurn, stats.NewStream(5, 2), "P", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	everJoined := map[string]bool{}
	flushed := map[string]bool{}
	var pending []string
	var buf []Cmd
	for round := 0; round < 300; round++ {
		buf = ts.Next(buf[:0], 8)
		for _, c := range buf {
			switch c.Op {
			case TraceJoin:
				if everJoined[c.Task] {
					t.Fatalf("round %d: name %q reused", round, c.Task)
				}
				if !strings.HasPrefix(c.Task, "P-c") {
					t.Fatalf("round %d: churn join %q outside namespace", round, c.Task)
				}
				everJoined[c.Task] = true
				pending = append(pending, c.Task)
			case TraceLeave:
				if !flushed[c.Task] {
					t.Fatalf("round %d: leave of %q before its join flushed", round, c.Task)
				}
				delete(flushed, c.Task)
			case TraceReweight:
				if !strings.HasPrefix(c.Task, "P-a") {
					t.Fatalf("round %d: reweight of %q outside the anchors", round, c.Task)
				}
			default:
				t.Fatalf("round %d: unexpected op %v", round, c.Op)
			}
		}
		if alive := len(flushed) + len(pending); alive > churnWindow {
			t.Fatalf("round %d: %d churn tasks alive, window is %d", round, alive, churnWindow)
		}
		ts.Advanced()
		for _, name := range pending {
			flushed[name] = true
		}
		pending = pending[:0]
	}
	if len(everJoined) < 20 {
		t.Errorf("churn generated only %d distinct tasks over 2400 commands", len(everJoined))
	}
}

// TestTemplateDeterminism checks identical (template, seed, prefix)
// inputs generate identical streams.
func TestTemplateDeterminism(t *testing.T) {
	for _, name := range TemplateNames() {
		tmpl, err := TemplateByName(name)
		if err != nil {
			t.Fatal(err)
		}
		mk := func() *TemplateStream {
			ts, err := NewTemplateStream(tmpl, stats.NewStream(9, 9), "P", 4, 8)
			if err != nil {
				t.Fatal(err)
			}
			return ts
		}
		a, b := mk(), mk()
		sa := a.Setup(nil)
		sb := b.Setup(nil)
		a.Advanced()
		b.Advanced()
		ca := a.Next(sa, 100)
		cb := b.Next(sb, 100)
		if len(ca) != len(cb) {
			t.Fatalf("%s: %d vs %d commands", name, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("%s: cmd %d: %+v vs %+v", name, i, ca[i], cb[i])
			}
		}
	}
}
