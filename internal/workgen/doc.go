// Package workgen is the workload layer for pd2d: temporal load shapes,
// pathological client templates, and a replayable trace format.
//
// The three pieces close the scenario-diversity gap between the
// closed-loop uniform generator in cmd/pd2load and the abrupt,
// wide-dynamic-range reweighting the paper analyzes:
//
//   - Shapes (shape.go) compose named phase segments into multi-period
//     temporal load curves (diurnal, ramp, spike, sine, flash-crowd).
//     Each phase modulates the command rate, the reweight magnitude,
//     and the join/leave churn probability of whatever generator
//     consults it.
//
//   - Templates (template.go) are deliberately-pathological client
//     behaviours — a reweight storm on one task, join/leave churn,
//     admission-limit camping, an all-heavy flood — that drive the
//     daemon into its degradation regimes. internal/serve's anomaly
//     counters (pd2d_anomaly_*) prove the degradation is graceful:
//     rejections rise, drift bounds hold, failed applies stay zero.
//
//   - Traces (trace.go, record.go) make every run a regression test:
//     Record captures the exact per-shard applied command stream
//     (op, task, weight, issue-slot) from a live daemon to a versioned
//     file, and Replay drives it deterministically against a fresh
//     daemon, verifying byte-identical core.StateDigest per shard.
//
// The package deliberately shares no code with internal/serve: it
// speaks the daemon's public JSON API with its own minimal client, so
// the generator cannot inherit a bug from the system under test.
package workgen
