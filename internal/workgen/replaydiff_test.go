package workgen_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
	"repro/internal/workgen"
)

// startDaemon brings up an in-process pd2d-equivalent and returns its
// base URL.
func startDaemon(t *testing.T, shards int, cfg serve.ShardConfig) string {
	t.Helper()
	srv, err := serve.New(serve.Options{Shards: shards, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Stop()
	})
	return ts.URL
}

type wireCmd struct {
	Op     string `json:"op"`
	Task   string `json:"task"`
	Weight string `json:"weight,omitempty"`
	Group  string `json:"group,omitempty"`
}

// mustPost posts commands and requires every result queued unless
// tolerate is set.
func mustPost(t *testing.T, base string, shard int, cmds []wireCmd, tolerate bool) {
	t.Helper()
	body, err := json.Marshal(cmds)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/shards/%d/commands", base, shard), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard %d commands: %d", shard, resp.StatusCode)
	}
	var results []struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&results); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Status != "queued" && !tolerate {
			t.Fatalf("shard %d command %d (%+v): %s (%s)", shard, i, cmds[i], r.Status, r.Reason)
		}
	}
}

func mustAdvance(t *testing.T, base string, shard int, slots int) {
	t.Helper()
	body := fmt.Sprintf(`{"slots":%d}`, slots)
	resp, err := http.Post(fmt.Sprintf("%s/v1/shards/%d/advance", base, shard), "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard %d advance: %d", shard, resp.StatusCode)
	}
}

// driveWorkload produces a nontrivial applied log on every shard: mixed
// joins (some grouped), reweights, leaves, and — on shard 0 — a
// deferred join provoked by a reweight-down whose scheduling weight has
// not yet decayed.
func driveWorkload(t *testing.T, base string, shards int) {
	t.Helper()
	for s := 0; s < shards; s++ {
		mustPost(t, base, s, []wireCmd{
			{Op: "join", Task: fmt.Sprintf("s%d-A", s), Weight: "1/2"},
			{Op: "join", Task: fmt.Sprintf("s%d-B", s), Weight: "1/4", Group: "grp"},
			{Op: "join", Task: fmt.Sprintf("s%d-C", s), Weight: "1/8"},
		}, false)
		mustAdvance(t, base, s, 1)
		mustPost(t, base, s, []wireCmd{
			{Op: "reweight", Task: fmt.Sprintf("s%d-A", s), Weight: "1/64"},
			{Op: "reweight", Task: fmt.Sprintf("s%d-B", s), Weight: "5/64"},
		}, false)
		mustAdvance(t, base, s, 2)
		mustPost(t, base, s, []wireCmd{
			{Op: "leave", Task: fmt.Sprintf("s%d-C", s)},
			{Op: "reweight", Task: fmt.Sprintf("s%d-A", s), Weight: "3/64"},
		}, false)
		mustAdvance(t, base, s, 1)
	}
	// Shard 0: reweight down and immediately join close to requested
	// capacity; the join is admitted on requested weight but can only
	// apply once the old scheduling weight decays (condition J).
	mustPost(t, base, 0, []wireCmd{
		{Op: "reweight", Task: "s0-B", Weight: "1/64"},
		{Op: "join", Task: "s0-D", Weight: "1/2"},
	}, false)
	// Drain generously so every deferred command applies.
	for i := 0; i < 8; i++ {
		mustAdvance(t, base, 0, 1)
	}
}

// TestRecordReplayDifferential is the end-to-end witness: record a
// driven run, replay the trace against a fresh daemon with the same
// config, and require byte-identical per-shard state digests.
func TestRecordReplayDifferential(t *testing.T) {
	cfg := serve.ShardConfig{M: 1}
	const shards = 2
	base := startDaemon(t, shards, cfg)
	driveWorkload(t, base, shards)

	client := &http.Client{}
	tr, err := workgen.Record(client, base, shards)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Shards) != shards {
		t.Fatalf("recorded %d shards, want %d", len(tr.Shards), shards)
	}
	for i := range tr.Shards {
		if len(tr.Shards[i].Log) == 0 {
			t.Fatalf("shard %d recorded an empty log", tr.Shards[i].Shard)
		}
	}

	// The trace round-trips through its file encoding before replay, so
	// the differential covers the codec too.
	enc, err := tr.EncodeToBytes()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := workgen.DecodeTrace(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}

	fresh := startDaemon(t, shards, cfg)
	results, err := workgen.Replay(client, fresh, decoded)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(results) != shards {
		t.Fatalf("replayed %d shards, want %d", len(results), shards)
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("shard %d: digest %016x, recorded %016x", r.Shard, r.Digest, r.Want)
		}
		if r.Digest != decoded.Shards[r.Shard].Digest {
			t.Errorf("shard %d: result digest %016x disagrees with trace %016x", r.Shard, r.Digest, decoded.Shards[r.Shard].Digest)
		}
	}

	// Replaying onto the now-dirty daemon must refuse: replay targets
	// fresh state only.
	if _, err := workgen.Replay(client, fresh, decoded); err == nil {
		t.Error("second replay onto a dirty daemon succeeded")
	}
}

// TestReplayDetectsTamper flips a recorded digest and requires the
// replay to report the mismatch as an error.
func TestReplayDetectsTamper(t *testing.T) {
	cfg := serve.ShardConfig{M: 1}
	base := startDaemon(t, 1, cfg)
	mustPost(t, base, 0, []wireCmd{{Op: "join", Task: "A", Weight: "1/4"}}, false)
	mustAdvance(t, base, 0, 2)

	client := &http.Client{}
	tr, err := workgen.Record(client, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.Shards[0].Digest ^= 1

	fresh := startDaemon(t, 1, cfg)
	results, err := workgen.Replay(client, fresh, tr)
	if err == nil {
		t.Fatal("tampered digest replayed without error")
	}
	if len(results) != 1 || results[0].Match {
		t.Fatalf("tampered replay results: %+v", results)
	}
}

// TestReplayConfigMismatch requires replay to refuse a daemon whose
// shard config differs from the recorded one.
func TestReplayConfigMismatch(t *testing.T) {
	base := startDaemon(t, 1, serve.ShardConfig{M: 2})
	mustPost(t, base, 0, []wireCmd{{Op: "join", Task: "A", Weight: "1/4"}}, false)
	mustAdvance(t, base, 0, 1)

	client := &http.Client{}
	tr, err := workgen.Record(client, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := startDaemon(t, 1, serve.ShardConfig{M: 4})
	if _, err := workgen.Replay(client, other, tr); err == nil {
		t.Error("replay against a mismatched M succeeded")
	}
}
