package workgen

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frac"
)

// goldenTrace is the fixture trace: two shards, every encodable op,
// names that stress the quoting (spaces, quotes, backslashes, unicode,
// empty group), and a digest with leading zeros.
func goldenTrace() *Trace {
	return &Trace{Shards: []ShardTrace{
		{
			Shard: 0, M: 2, Policy: "oi", OIThreshold: frac.New(1, 8),
			Now: 3, Digest: 0x00000000deadbeef,
			Log: []core.Command{
				{At: 0, Op: core.OpJoin, Task: "plain", Weight: frac.New(1, 64)},
				{At: 0, Op: core.OpJoin, Task: "with space", Weight: frac.New(1, 4), Group: "grp A"},
				{At: 1, Op: core.OpReweight, Task: "plain", Weight: frac.New(3, 64)},
				{At: 2, Op: core.OpLeave, Task: "with space"},
			},
		},
		{
			Shard: 1, M: 4, Policy: "hybrid", OIThreshold: frac.New(1, 16),
			EarlyRelease: true, RecordSchedule: true,
			Now: 5, Digest: 0xfedcba9876543210,
			Log: []core.Command{
				{At: 0, Op: core.OpJoin, Task: `quo"te\slash`, Weight: frac.New(1, 2)},
				{At: 1, Op: core.OpJoin, Task: "uniçode", Weight: frac.New(1, 3), Group: "g"},
				{At: 4, Op: core.OpReweight, Task: "uniçode", Weight: frac.New(2, 5)},
			},
		},
	}}
}

// TestTraceGolden pins the canonical encoding byte-for-byte against the
// committed fixture. Regenerate with -run TestTraceGolden -update.
func TestTraceGolden(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.trace")
	got, err := goldenTrace().EncodeToBytes()
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("encoding drifted from golden fixture:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestTraceRoundTrip checks decode(encode(tr)) reproduces the trace and
// that re-encoding is a byte-stable fixed point.
func TestTraceRoundTrip(t *testing.T) {
	tr := goldenTrace()
	enc, err := tr.EncodeToBytes()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeTrace(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("decoding own encoding: %v", err)
	}
	if !reflect.DeepEqual(tr, dec) {
		t.Errorf("round trip changed the trace:\n got %+v\nwant %+v", dec, tr)
	}
	enc2, err := dec.EncodeToBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Errorf("re-encoding is not byte-stable:\n first %q\n second %q", enc, enc2)
	}
}

// TestTraceShardsUnsortedEncodeSorted checks Encode emits shards in
// ascending id order regardless of input order.
func TestTraceShardsUnsortedEncodeSorted(t *testing.T) {
	tr := goldenTrace()
	tr.Shards[0], tr.Shards[1] = tr.Shards[1], tr.Shards[0]
	enc, err := tr.EncodeToBytes()
	if err != nil {
		t.Fatal(err)
	}
	want, err := goldenTrace().EncodeToBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, want) {
		t.Error("shard order in the input leaked into the encoding")
	}
}

// TestDecodeTraceErrors feeds malformed traces and requires an error —
// never a panic — for each.
func TestDecodeTraceErrors(t *testing.T) {
	valid, err := goldenTrace().EncodeToBytes()
	if err != nil {
		t.Fatal(err)
	}
	vs := string(valid)
	cases := map[string]string{
		"empty":               "",
		"garbage header":      "hello world\n",
		"bad version":         "pd2dtrace v2 shards=0\nend\n",
		"negative shards":     "pd2dtrace v1 shards=-1\nend\n",
		"huge shards":         "pd2dtrace v1 shards=999999999\nend\n",
		"missing end":         strings.TrimSuffix(vs, "end\n"),
		"truncated mid-shard": vs[:len(vs)/2],
		"trailing data":       vs + "extra\n",
		"short shard line":    "pd2dtrace v1 shards=1\nshard 0 m=1\nend\n",
		"bad digest":          "pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=1 digest=xyz cmds=0\nend\n",
		"short digest":        "pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=1 digest=abc cmds=0\nend\n",
		"bad bit":             "pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=2 rs=0 now=1 digest=0000000000000000 cmds=0\nend\n",
		"negative now":        "pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=-1 digest=0000000000000000 cmds=0\nend\n",
		"cmd count mismatch":  "pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=1 digest=0000000000000000 cmds=2\nc 0 join \"a\" w=1/4\nend\n",
		"unknown op":          "pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=1 digest=0000000000000000 cmds=1\nc 0 explode \"a\"\nend\n",
		"join without weight": "pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=1 digest=0000000000000000 cmds=1\nc 0 join \"a\"\nend\n",
		"leave with weight":   "pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=1 digest=0000000000000000 cmds=1\nc 0 leave \"a\" w=1/4\nend\n",
		"unquoted task":       "pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=1 digest=0000000000000000 cmds=1\nc 0 join a w=1/4\nend\n",
		"at >= now":           "pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=1 digest=0000000000000000 cmds=1\nc 1 join \"a\" w=1/4\nend\n",
		"unsorted log":        "pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=3 digest=0000000000000000 cmds=2\nc 2 join \"a\" w=1/4\nc 1 join \"b\" w=1/4\nend\n",
		"duplicate shard id":  "pd2dtrace v1 shards=2\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=1 digest=0000000000000000 cmds=0\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=1 digest=0000000000000000 cmds=0\nend\n",
	}
	for name, in := range cases {
		if _, err := DecodeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzTraceDecode requires DecodeTrace never panics, and that any trace
// it accepts is already in canonical form up to a re-encode fixed
// point: encode(decode(in)) must itself decode to the same trace.
func FuzzTraceDecode(f *testing.F) {
	valid, err := goldenTrace().EncodeToBytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add("")
	f.Add("pd2dtrace v1 shards=0\nend\n")
	f.Add("pd2dtrace v1 shards=1\nshard 0 m=1 policy=oi oithresh=1/8 er=0 rs=0 now=1 digest=0000000000000000 cmds=1\nc 0 join \"a\" w=1/4\nend\n")
	f.Add("pd2dtrace v2 shards=1\nend\n")
	f.Add(string(valid[:len(valid)/3]))
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := DecodeTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		enc, err := tr.EncodeToBytes()
		if err != nil {
			t.Fatalf("decoded trace fails to encode: %v", err)
		}
		tr2, err := DecodeTrace(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical re-encoding fails to decode: %v\n%s", err, enc)
		}
		enc2, err := tr2.EncodeToBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point:\n first %q\n second %q", enc, enc2)
		}
	})
}
