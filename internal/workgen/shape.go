package workgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// A Phase is one named segment of a temporal load shape. A generator
// consults the phase in effect each issue round and modulates what it
// sends accordingly; the phase itself holds no state, so shapes are
// shareable across workers.
type Phase struct {
	// Name labels the segment in stats lines and docs ("night", "peak").
	Name string
	// Rounds is how many issue rounds the phase covers (>= 1).
	Rounds int
	// Rate multiplies the generator's base batch size; 0 is an idle
	// phase (the generator paces virtual time but sends no commands).
	Rate float64
	// Spread widens the reweight magnitude: target numerators are drawn
	// from [1, Spread] over a /64 grid (>= 1). Large spreads are the
	// paper's wide-dynamic-range reweighting regime.
	Spread int
	// Churn is the probability in [0, 1] that a generated command is a
	// join/leave churn step instead of a reweight.
	Churn float64
}

// A Shape is a cyclic sequence of phases: round r falls into the phase
// covering r modulo the shape's total rounds, so every shape describes
// a repeating (multi-period) temporal pattern.
type Shape struct {
	Name   string
	Phases []Phase
}

// TotalRounds returns the length of one full cycle.
func (s *Shape) TotalRounds() int {
	n := 0
	for i := range s.Phases {
		n += s.Phases[i].Rounds
	}
	return n
}

// Phase returns the phase in effect at issue round r (cycling).
// It panics on a shape with no rounds; Validate rejects those.
func (s *Shape) Phase(r int) *Phase {
	total := s.TotalRounds()
	if total <= 0 {
		panic("workgen: shape has no rounds; Validate before use")
	}
	r %= total
	for i := range s.Phases {
		if r < s.Phases[i].Rounds {
			return &s.Phases[i]
		}
		r -= s.Phases[i].Rounds
	}
	// Unreachable: the loop consumes exactly total rounds.
	panic("workgen: phase cursor escaped the cycle")
}

// Validate checks every phase's ranges.
func (s *Shape) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("workgen: shape %q has no phases", s.Name)
	}
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Name == "" {
			return fmt.Errorf("workgen: shape %q phase %d has no name", s.Name, i)
		}
		if p.Rounds < 1 {
			return fmt.Errorf("workgen: shape %q phase %q needs rounds >= 1, got %d", s.Name, p.Name, p.Rounds)
		}
		if p.Rate < 0 || math.IsNaN(p.Rate) || math.IsInf(p.Rate, 0) {
			return fmt.Errorf("workgen: shape %q phase %q needs a finite rate >= 0, got %v", s.Name, p.Name, p.Rate)
		}
		if p.Spread < 1 || p.Spread > 32 {
			return fmt.Errorf("workgen: shape %q phase %q needs spread in [1, 32], got %d", s.Name, p.Name, p.Spread)
		}
		if p.Churn < 0 || p.Churn > 1 || math.IsNaN(p.Churn) {
			return fmt.Errorf("workgen: shape %q phase %q needs churn in [0, 1], got %v", s.Name, p.Name, p.Churn)
		}
	}
	return nil
}

// shapeNames lists the built-in shapes in documentation order.
var shapeNames = []string{"uniform", "diurnal", "ramp", "spike", "sine", "flash-crowd"}

// ShapeNames returns the built-in shape names.
func ShapeNames() []string { return append([]string(nil), shapeNames...) }

// builtinShape constructs a built-in shape by name.
func builtinShape(name string) (*Shape, bool) {
	switch name {
	case "uniform":
		// The closed-loop baseline: steady rate, narrow reweights.
		return &Shape{Name: name, Phases: []Phase{
			{Name: "steady", Rounds: 64, Rate: 1, Spread: 2},
		}}, true
	case "diurnal":
		// A day: quiet night, morning ramp, busy peak with churn as
		// users arrive and depart, evening tail.
		return &Shape{Name: name, Phases: []Phase{
			{Name: "night", Rounds: 24, Rate: 0.25, Spread: 2},
			{Name: "morning", Rounds: 16, Rate: 0.75, Spread: 4, Churn: 0.1},
			{Name: "peak", Rounds: 24, Rate: 1.5, Spread: 8, Churn: 0.2},
			{Name: "evening", Rounds: 16, Rate: 0.75, Spread: 4, Churn: 0.1},
		}}, true
	case "ramp":
		// Monotone load growth: each phase doubles pressure.
		return &Shape{Name: name, Phases: []Phase{
			{Name: "r1", Rounds: 16, Rate: 0.25, Spread: 2},
			{Name: "r2", Rounds: 16, Rate: 0.5, Spread: 4},
			{Name: "r3", Rounds: 16, Rate: 1, Spread: 8},
			{Name: "r4", Rounds: 16, Rate: 2, Spread: 16, Churn: 0.1},
		}}, true
	case "spike":
		// Steady state with a short violent burst and a recovery tail.
		return &Shape{Name: name, Phases: []Phase{
			{Name: "steady", Rounds: 32, Rate: 1, Spread: 2},
			{Name: "spike", Rounds: 8, Rate: 4, Spread: 24, Churn: 0.2},
			{Name: "recovery", Rounds: 16, Rate: 0.5, Spread: 2},
		}}, true
	case "sine":
		return sineShape(), true
	case "flash-crowd":
		// Calm, then a crowd floods in (high churn joins), then decays.
		return &Shape{Name: name, Phases: []Phase{
			{Name: "calm", Rounds: 24, Rate: 0.5, Spread: 2},
			{Name: "flash", Rounds: 12, Rate: 4, Spread: 16, Churn: 0.5},
			{Name: "decay", Rounds: 12, Rate: 2, Spread: 8, Churn: 0.25},
			{Name: "settle", Rounds: 16, Rate: 1, Spread: 4, Churn: 0.1},
		}}, true
	}
	return nil, false
}

// sineShape samples one sinusoid period into 16 equal segments with
// rate 1 + 0.75*sin, so the cycle swings between 0.25x and 1.75x.
func sineShape() *Shape {
	const segments = 16
	s := &Shape{Name: "sine", Phases: make([]Phase, segments)}
	for i := 0; i < segments; i++ {
		rate := 1 + 0.75*math.Sin(2*math.Pi*float64(i)/segments)
		spread := 2 + int(6*rate)
		s.Phases[i] = Phase{Name: "s" + strconv.Itoa(i), Rounds: 8, Rate: rate, Spread: spread}
	}
	return s
}

// ShapeByName resolves spec to a shape: a built-in name ("diurnal"), or
// an inline phase grammar when the spec contains '='. The grammar is
//
//	name=rounds:rate:spread:churn[,name=rounds:rate:spread:churn...]
//
// e.g. "calm=32:1:2:0,surge=16:3:24:0.25". docs/WORKGEN.md is the
// normative description.
func ShapeByName(spec string) (*Shape, error) {
	if s, ok := builtinShape(spec); ok {
		return s, nil
	}
	if !strings.Contains(spec, "=") {
		return nil, fmt.Errorf("workgen: unknown shape %q (built-ins: %s; or inline name=rounds:rate:spread:churn,...)",
			spec, strings.Join(shapeNames, ", "))
	}
	s := &Shape{Name: "custom"}
	for _, seg := range strings.Split(spec, ",") {
		name, rest, ok := strings.Cut(seg, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("workgen: shape segment %q is not name=rounds:rate:spread:churn", seg)
		}
		fields := strings.Split(rest, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("workgen: shape segment %q needs 4 fields rounds:rate:spread:churn, got %d", seg, len(fields))
		}
		rounds, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("workgen: shape segment %q rounds: %v", seg, err)
		}
		rate, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workgen: shape segment %q rate: %v", seg, err)
		}
		spread, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("workgen: shape segment %q spread: %v", seg, err)
		}
		churn, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("workgen: shape segment %q churn: %v", seg, err)
		}
		s.Phases = append(s.Phases, Phase{Name: name, Rounds: rounds, Rate: rate, Spread: spread, Churn: churn})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// BatchSize scales base by the phase rate, rounding half-up, clamped to
// [0, 4*base] so a hot phase cannot outgrow wire limits.
func (p *Phase) BatchSize(base int) int {
	n := int(math.Floor(float64(base)*p.Rate + 0.5))
	if n < 0 {
		n = 0
	}
	if max := 4 * base; n > max {
		n = max
	}
	return n
}
