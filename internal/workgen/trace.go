package workgen

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/frac"
	"repro/internal/model"
)

// The trace format: a versioned, line-oriented, byte-stable encoding of
// the exact per-shard applied command stream of a pd2d run. A trace is
// sufficient to rebuild every shard byte-for-byte (core.Replay over the
// log is the engine's snapshot contract) and carries each shard's
// recorded StateDigest so a replay can prove it reproduced the run.
//
// docs/WORKGEN.md is the normative format description; keep in sync.
//
//	pd2dtrace v1 shards=<n>
//	shard <id> m=<m> policy=<name> oithresh=<rat> er=<0|1> rs=<0|1> now=<t> digest=<16 hex> cmds=<k>
//	c <at> <op> <task> [w=<rat>] [g=<group>] [arg=<int>]
//	...
//	end
//
// Task and group names are Go-quoted so arbitrary wire names round-trip
// exactly. Command lines belong to the most recent shard line, must be
// non-decreasing in <at>, and each shard block must carry exactly the
// cmds=<k> lines it declares. The trailing "end" line detects
// truncation. Decode never panics on hostile input (FuzzTraceDecode
// pins this); every malformed, truncated, or version-skewed trace is an
// error.

// TraceOp enumerates the command ops a trace line may carry. It mirrors
// core.CommandOp one-for-one; the duplication keeps the file format's
// vocabulary explicit and independently versioned.
//
//lint:exhaustive ignore=numTraceOps -- sentinel counts the ops, it is not one
type TraceOp uint8

const (
	// TraceJoin adds a task.
	TraceJoin TraceOp = iota
	// TraceLeave removes a task.
	TraceLeave
	// TraceReweight requests a weight change.
	TraceReweight
	// TraceDelay postpones the task's next release (IS delay).
	TraceDelay
	// TraceAbsent marks an absolute subtask index absent.
	TraceAbsent

	numTraceOps // number of ops; keep last
)

// traceOpNames is indexed by TraceOp and doubles as the file encoding.
var traceOpNames = [numTraceOps]string{
	TraceJoin:     "join",
	TraceLeave:    "leave",
	TraceReweight: "reweight",
	TraceDelay:    "delay",
	TraceAbsent:   "absent",
}

func (op TraceOp) String() string {
	if op < numTraceOps {
		return traceOpNames[op]
	}
	return fmt.Sprintf("TraceOp(%d)", uint8(op))
}

// traceOpFromName resolves a file token to its op.
func traceOpFromName(name string) (TraceOp, error) {
	for i, n := range traceOpNames {
		if n == name {
			return TraceOp(i), nil
		}
	}
	return 0, fmt.Errorf("workgen: unknown trace op %q", name)
}

// traceOpOf maps an engine op to the trace vocabulary.
func traceOpOf(op core.CommandOp) (TraceOp, error) {
	switch op { // exhaustive: adding a core op must extend the trace format (eventexhaust)
	case core.OpJoin:
		return TraceJoin, nil
	case core.OpLeave:
		return TraceLeave, nil
	case core.OpReweight:
		return TraceReweight, nil
	case core.OpDelay:
		return TraceDelay, nil
	case core.OpAbsent:
		return TraceAbsent, nil
	}
	return 0, fmt.Errorf("workgen: core op %d has no trace encoding", uint8(op))
}

// coreOpOf maps a trace op back to the engine vocabulary.
func coreOpOf(op TraceOp) core.CommandOp {
	switch op { // exhaustive: every trace op must map back to an engine op (eventexhaust)
	case TraceJoin:
		return core.OpJoin
	case TraceLeave:
		return core.OpLeave
	case TraceReweight:
		return core.OpReweight
	case TraceDelay:
		return core.OpDelay
	case TraceAbsent:
		return core.OpAbsent
	default:
		panic(fmt.Sprintf("workgen: unhandled trace op %d", uint8(op)))
	}
}

// traceVersion guards the file format; bump on incompatible change.
const traceVersion = 1

// ShardTrace is one shard's recorded stream: the engine configuration
// it ran under, the applied command log in apply order, the horizon the
// clock reached, and the state digest at that horizon.
type ShardTrace struct {
	Shard        int
	M            int
	Policy       string
	OIThreshold  frac.Rat
	EarlyRelease bool
	// RecordSchedule matters for the digest: a schedule-recording
	// engine digests its schedule rows too, so replay must match it.
	RecordSchedule bool
	Now            int64
	Digest         uint64
	Log            []core.Command
}

// Trace is a complete recorded run: one ShardTrace per shard, in
// ascending shard order.
type Trace struct {
	Shards []ShardTrace
}

// Encode writes the trace in its canonical byte-stable form: shards in
// ascending id order, fields in fixed order, names Go-quoted. Encoding
// a decoded trace reproduces the canonical bytes exactly
// (TestTraceGolden and FuzzTraceDecode pin the round trip).
func (tr *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	shards := make([]*ShardTrace, len(tr.Shards))
	for i := range tr.Shards {
		shards[i] = &tr.Shards[i]
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].Shard < shards[j].Shard })
	// bufio errors are sticky: intermediate write errors are dropped here
	// and surface from the final Flush.
	_, _ = fmt.Fprintf(bw, "pd2dtrace v%d shards=%d\n", traceVersion, len(shards))
	for _, st := range shards {
		_, _ = fmt.Fprintf(bw, "shard %d m=%d policy=%s oithresh=%s er=%d rs=%d now=%d digest=%016x cmds=%d\n",
			st.Shard, st.M, st.Policy, st.OIThreshold, b2i(st.EarlyRelease), b2i(st.RecordSchedule),
			st.Now, st.Digest, len(st.Log))
		for i := range st.Log {
			c := &st.Log[i]
			op, err := traceOpOf(c.Op)
			if err != nil {
				return err
			}
			_, _ = fmt.Fprintf(bw, "c %d %s %s", c.At, op, strconv.Quote(c.Task))
			switch op { // exhaustive: every op's payload fields are explicit (eventexhaust)
			case TraceJoin:
				_, _ = fmt.Fprintf(bw, " w=%s", c.Weight)
				if c.Group != "" {
					_, _ = fmt.Fprintf(bw, " g=%s", strconv.Quote(c.Group))
				}
			case TraceReweight:
				_, _ = fmt.Fprintf(bw, " w=%s", c.Weight)
			case TraceDelay, TraceAbsent:
				_, _ = fmt.Fprintf(bw, " arg=%d", c.Arg)
			case TraceLeave:
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("end\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Validate checks the structural invariants Decode enforces, so a
// hand-built trace fails early rather than at encode/replay time.
func (tr *Trace) Validate() error {
	seen := make(map[int]bool, len(tr.Shards))
	for i := range tr.Shards {
		st := &tr.Shards[i]
		if st.Shard < 0 {
			return fmt.Errorf("workgen: trace shard id %d is negative", st.Shard)
		}
		if seen[st.Shard] {
			return fmt.Errorf("workgen: trace repeats shard %d", st.Shard)
		}
		seen[st.Shard] = true
		if st.M < 1 {
			return fmt.Errorf("workgen: trace shard %d needs m >= 1, got %d", st.Shard, st.M)
		}
		if st.Now < 0 {
			return fmt.Errorf("workgen: trace shard %d has negative horizon %d", st.Shard, st.Now)
		}
		last := model.Time(0)
		for j := range st.Log {
			c := &st.Log[j]
			if c.At < last {
				return fmt.Errorf("workgen: trace shard %d command %d at t=%d is behind t=%d (log must be ordered)",
					st.Shard, j, c.At, last)
			}
			if int64(c.At) >= st.Now {
				return fmt.Errorf("workgen: trace shard %d command %d at t=%d is at or past the horizon %d",
					st.Shard, j, c.At, st.Now)
			}
			last = c.At
			if _, err := traceOpOf(c.Op); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecodeTrace parses a trace file. It enforces the version, the
// per-shard cmds counts, command ordering, and the trailing end marker;
// any violation is an error and hostile input never panics.
func DecodeTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	next := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		line++
		return sc.Text(), true
	}
	header, ok := next()
	if !ok {
		return nil, fmt.Errorf("workgen: empty trace: %w", firstErr(sc.Err(), io.ErrUnexpectedEOF))
	}
	var version, nshards int
	if n, err := fmt.Sscanf(header, "pd2dtrace v%d shards=%d", &version, &nshards); n != 2 || err != nil {
		return nil, fmt.Errorf("workgen: line 1: malformed trace header %q", header)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("workgen: trace version %d, this build reads v%d", version, traceVersion)
	}
	if nshards < 0 || nshards > 1<<16 {
		return nil, fmt.Errorf("workgen: trace header declares %d shards", nshards)
	}
	tr := &Trace{Shards: make([]ShardTrace, 0, nshards)}
	for s := 0; s < nshards; s++ {
		text, ok := next()
		if !ok {
			return nil, fmt.Errorf("workgen: truncated trace: %d of %d shard blocks, then EOF", s, nshards)
		}
		st, ncmds, err := parseShardLine(text)
		if err != nil {
			return nil, fmt.Errorf("workgen: line %d: %w", line, err)
		}
		st.Log = make([]core.Command, 0, min(ncmds, 1<<16))
		for c := 0; c < ncmds; c++ {
			text, ok := next()
			if !ok {
				return nil, fmt.Errorf("workgen: truncated trace: shard %d declares %d commands, got %d, then EOF",
					st.Shard, ncmds, c)
			}
			cmd, err := parseCommandLine(text)
			if err != nil {
				return nil, fmt.Errorf("workgen: line %d: %w", line, err)
			}
			st.Log = append(st.Log, cmd)
		}
		tr.Shards = append(tr.Shards, st)
	}
	text, ok := next()
	if !ok || text != "end" {
		return nil, fmt.Errorf("workgen: trace missing end marker (truncated?)")
	}
	if _, ok := next(); ok {
		return nil, fmt.Errorf("workgen: line %d: trailing data after end marker", line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workgen: reading trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// parseShardLine parses one "shard ..." header and returns the shard
// trace (Log unset) plus its declared command count.
func parseShardLine(text string) (ShardTrace, int, error) {
	var st ShardTrace
	fields := strings.Fields(text)
	if len(fields) != 10 || fields[0] != "shard" {
		return st, 0, fmt.Errorf("malformed shard line %q", text)
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return st, 0, fmt.Errorf("shard id %q: %v", fields[1], err)
	}
	st.Shard = id
	var ncmds int
	for _, f := range fields[2:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return st, 0, fmt.Errorf("shard field %q is not key=value", f)
		}
		switch key {
		case "m":
			st.M, err = strconv.Atoi(val)
		case "policy":
			st.Policy = val
		case "oithresh":
			st.OIThreshold, err = frac.Parse(val)
		case "er":
			st.EarlyRelease, err = parseBit(val)
		case "rs":
			st.RecordSchedule, err = parseBit(val)
		case "now":
			st.Now, err = strconv.ParseInt(val, 10, 64)
		case "digest":
			if len(val) != 16 {
				return st, 0, fmt.Errorf("digest %q is not 16 hex digits", val)
			}
			st.Digest, err = strconv.ParseUint(val, 16, 64)
		case "cmds":
			ncmds, err = strconv.Atoi(val)
			if err == nil && (ncmds < 0 || ncmds > 1<<28) {
				err = fmt.Errorf("count %d out of range", ncmds)
			}
		default:
			return st, 0, fmt.Errorf("unknown shard field %q", key)
		}
		if err != nil {
			return st, 0, fmt.Errorf("shard field %q: %v", f, err)
		}
	}
	return st, ncmds, nil
}

func parseBit(s string) (bool, error) {
	switch s {
	case "0":
		return false, nil
	case "1":
		return true, nil
	}
	return false, fmt.Errorf("flag %q is not 0 or 1", s)
}

// parseCommandLine parses one "c <at> <op> <task> ..." line.
func parseCommandLine(text string) (core.Command, error) {
	var cmd core.Command
	rest, ok := strings.CutPrefix(text, "c ")
	if !ok {
		return cmd, fmt.Errorf("malformed command line %q", text)
	}
	atStr, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return cmd, fmt.Errorf("command line %q has no op", text)
	}
	at, err := strconv.ParseInt(atStr, 10, 64)
	if err != nil {
		return cmd, fmt.Errorf("command slot %q: %v", atStr, err)
	}
	cmd.At = model.Time(at)
	opStr, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return cmd, fmt.Errorf("command line %q has no task", text)
	}
	op, err := traceOpFromName(opStr)
	if err != nil {
		return cmd, err
	}
	cmd.Op = coreOpOf(op)
	task, rest, err := cutQuoted(rest)
	if err != nil {
		return cmd, fmt.Errorf("command task in %q: %v", text, err)
	}
	cmd.Task = task
	var haveW, haveArg, haveG bool
	for rest != "" {
		var f string
		f, rest, _ = strings.Cut(rest, " ")
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return cmd, fmt.Errorf("command field %q is not key=value", f)
		}
		switch key {
		case "w":
			cmd.Weight, err = frac.Parse(val)
			haveW = true
		case "g":
			// Re-attach the remainder: a quoted group may contain spaces.
			q := val
			if rest != "" {
				q = val + " " + rest
			}
			var tail string
			cmd.Group, tail, err = cutQuoted(q)
			rest = tail
			haveG = true
		case "arg":
			cmd.Arg, err = strconv.ParseInt(val, 10, 64)
			haveArg = true
		default:
			return cmd, fmt.Errorf("unknown command field %q", key)
		}
		if err != nil {
			return cmd, fmt.Errorf("command field %q: %v", f, err)
		}
	}
	switch op { // exhaustive: per-op payload validation (eventexhaust)
	case TraceJoin:
		if !haveW || haveArg {
			return cmd, fmt.Errorf("join %q needs w= and no arg=", cmd.Task)
		}
	case TraceReweight:
		if !haveW || haveArg || haveG {
			return cmd, fmt.Errorf("reweight %q needs w= only", cmd.Task)
		}
	case TraceLeave:
		if haveW || haveArg || haveG {
			return cmd, fmt.Errorf("leave %q carries no fields", cmd.Task)
		}
	case TraceDelay, TraceAbsent:
		if !haveArg || haveW || haveG {
			return cmd, fmt.Errorf("%s %q needs arg= only", op, cmd.Task)
		}
	}
	return cmd, nil
}

// cutQuoted splits a Go-quoted string off the front of s, returning the
// unquoted value and the remainder after the separating space.
func cutQuoted(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted string, got %q", s)
	}
	// Find the closing quote: the first '"' not preceded by a backslash
	// escape. Walk with the escape state machine rather than guessing.
	esc := false
	for i := 1; i < len(s); i++ {
		switch {
		case esc:
			esc = false
		case s[i] == '\\':
			esc = true
		case s[i] == '"':
			val, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			rest := s[i+1:]
			if rest != "" {
				var ok bool
				rest, ok = strings.CutPrefix(rest, " ")
				if !ok {
					return "", "", fmt.Errorf("quoted string %q not followed by a space", s[:i+1])
				}
			}
			return val, rest, nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string %q", s)
}

// EncodeToBytes is Encode into a fresh buffer.
func (tr *Trace) EncodeToBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
