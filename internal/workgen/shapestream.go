package workgen

import (
	"fmt"
	"strconv"

	"repro/internal/stats"
)

// ShapeStream turns a Shape into a concrete command stream for one
// worker. Each NextBatch call is one issue round: the phase in effect
// sets how many commands the round carries (rate), how wide the
// reweight targets range (spread), and how likely a command is a
// join/leave churn step instead of a reweight (churn).
//
// Reweights target the caller's shared anchor tasks (joined once per
// shard by the load generator's setup); churn joins short-lived tasks
// in the stream's own prefix namespace and leaves them once a later
// Advanced call confirms their joins were flushed. The stream is
// deterministic in (shape, rng, prefix) and single-goroutine.
type ShapeStream struct {
	shape  *Shape
	rng    *stats.RNG
	prefix string
	anchor func(i int) string
	tasks  int
	maxNum int

	round int
	fresh []string // churn tasks joined since the last Advanced
	ready []string // churn tasks whose joins have been flushed
	seq   int      // fresh-name counter
}

// NewShapeStream validates the shape and builds a stream. anchor names
// the shared reweight targets (i in [0, tasks)); prefix namespaces the
// stream's own churn tasks and must be unique per worker (names are
// burned forever). maxNum caps reweight-target numerators (/64) so the
// caller can keep total requested weight inside the shard's capacity
// regardless of how aggressive the phase spread is; it is clamped to
// the light-weight range [1, 31].
func NewShapeStream(shape *Shape, rng *stats.RNG, prefix string, anchor func(i int) string, tasks, maxNum int) (*ShapeStream, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if anchor == nil {
		return nil, fmt.Errorf("workgen: shape stream needs an anchor naming function")
	}
	if tasks < 1 {
		return nil, fmt.Errorf("workgen: shape stream needs tasks >= 1, got %d", tasks)
	}
	if maxNum < 1 {
		maxNum = 1
	}
	if maxNum > 31 {
		maxNum = 31
	}
	return &ShapeStream{shape: shape, rng: rng, prefix: prefix, anchor: anchor, tasks: tasks, maxNum: maxNum}, nil
}

// PhaseName returns the name of the phase the next round falls into.
func (ss *ShapeStream) PhaseName() string { return ss.shape.Phase(ss.round).Name }

// NextBatch appends one round's commands to dst, sized by the current
// phase's rate against base. An idle phase (rate 0) appends nothing —
// the round still elapses, so the caller keeps pacing virtual time.
func (ss *ShapeStream) NextBatch(dst []Cmd, base int) []Cmd {
	p := ss.shape.Phase(ss.round)
	ss.round++
	n := p.BatchSize(base)
	spread := p.Spread
	if spread > ss.maxNum {
		spread = ss.maxNum
	}
	for i := 0; i < n; i++ {
		if p.Churn > 0 && ss.rng.Float64() < p.Churn {
			dst = ss.churnStep(dst)
			continue
		}
		w := sixtyFourths(int64(1 + ss.rng.Bounded(spread)))
		dst = append(dst, Cmd{Op: TraceReweight, Task: ss.anchor(ss.rng.Bounded(ss.tasks)), Weight: w})
	}
	return dst
}

// churnStep emits one join or leave, keeping at most churnWindow of the
// stream's short-lived tasks alive so the weight envelope stays bounded.
func (ss *ShapeStream) churnStep(dst []Cmd) []Cmd {
	canJoin := len(ss.fresh)+len(ss.ready) < churnWindow
	switch {
	case canJoin && (len(ss.ready) == 0 || ss.rng.Bounded(2) == 0):
		name := ss.prefix + "-c" + strconv.Itoa(ss.seq)
		ss.seq++
		ss.fresh = append(ss.fresh, name)
		return append(dst, Cmd{Op: TraceJoin, Task: name, Weight: sixtyFourths(2)})
	case len(ss.ready) > 0:
		name := ss.ready[0]
		ss.ready = ss.ready[1:]
		return append(dst, Cmd{Op: TraceLeave, Task: name})
	default:
		// Window full, nothing flushed yet: fall back to a reweight so
		// the round keeps its command count.
		w := sixtyFourths(int64(1 + ss.rng.Bounded(2)))
		return append(dst, Cmd{Op: TraceReweight, Task: ss.anchor(ss.rng.Bounded(ss.tasks)), Weight: w})
	}
}

// Advanced tells the stream a slot boundary passed: joins posted before
// it have been flushed, so their tasks may now be left.
func (ss *ShapeStream) Advanced() {
	ss.ready = append(ss.ready, ss.fresh...)
	ss.fresh = ss.fresh[:0]
}
