package workgen

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// TestBuiltinShapesValidate checks every advertised built-in resolves
// and passes its own validation, and that phase cycling covers all
// rounds.
func TestBuiltinShapesValidate(t *testing.T) {
	for _, name := range ShapeNames() {
		s, err := ShapeByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		total := s.TotalRounds()
		if total < 1 {
			t.Fatalf("%s: total rounds %d", name, total)
		}
		// Phase() must resolve every round in two full cycles and land on
		// each phase for exactly its Rounds count per cycle.
		counts := map[string]int{}
		for r := 0; r < 2*total; r++ {
			counts[s.Phase(r).Name]++
		}
		for i := range s.Phases {
			p := &s.Phases[i]
			if counts[p.Name] != 2*p.Rounds {
				t.Errorf("%s: phase %q got %d rounds over two cycles, want %d",
					name, p.Name, counts[p.Name], 2*p.Rounds)
			}
		}
	}
}

// TestShapeGrammar pins the inline phase grammar.
func TestShapeGrammar(t *testing.T) {
	s, err := ShapeByName("calm=32:1:2:0,surge=16:3.5:24:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 2 || s.TotalRounds() != 48 {
		t.Fatalf("parsed %+v", s)
	}
	p := s.Phases[1]
	if p.Name != "surge" || p.Rounds != 16 || p.Rate != 3.5 || p.Spread != 24 || p.Churn != 0.25 {
		t.Errorf("surge parsed as %+v", p)
	}

	for _, bad := range []string{
		"",                   // unknown builtin
		"nope",               // unknown builtin
		"a=1:1:2",            // too few fields
		"a=1:1:2:0:9",        // too many fields
		"=1:1:2:0",           // empty name
		"a=x:1:2:0",          // bad rounds
		"a=0:1:2:0",          // rounds < 1
		"a=1:-1:2:0",         // negative rate
		"a=1:1:0:0",          // spread < 1
		"a=1:1:64:0",         // spread > 32
		"a=1:1:2:1.5",        // churn > 1
		"a=1:1:2:0,b=1:1:2:", // trailing bad segment
	} {
		if _, err := ShapeByName(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestBatchSize pins rounding and clamping of the phase rate.
func TestBatchSize(t *testing.T) {
	cases := []struct {
		rate float64
		base int
		want int
	}{
		{0, 8, 0},
		{1, 8, 8},
		{0.25, 8, 2},
		{0.4, 1, 0}, // rounds down below half
		{0.5, 1, 1}, // half rounds up
		{1.5, 8, 12},
		{4, 8, 32},   // exactly the clamp
		{100, 8, 32}, // clamped to 4*base
	}
	for _, tc := range cases {
		p := Phase{Rate: tc.rate}
		if got := p.BatchSize(tc.base); got != tc.want {
			t.Errorf("rate %v base %d: got %d, want %d", tc.rate, tc.base, got, tc.want)
		}
	}
}

// TestShapeStreamDeterminism checks two streams with identical inputs
// emit identical command sequences, and that batches respect the phase
// size and the spread/weight cap.
func TestShapeStreamDeterminism(t *testing.T) {
	anchor := func(i int) string { return "A" + string(rune('a'+i)) }
	mk := func() *ShapeStream {
		s, err := ShapeByName("diurnal")
		if err != nil {
			t.Fatal(err)
		}
		ss, err := NewShapeStream(s, stats.NewStream(7, 3), "W", anchor, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		return ss
	}
	a, b := mk(), mk()
	var ca, cb []Cmd
	for r := 0; r < 200; r++ {
		ca = a.NextBatch(ca[:0], 8)
		cb = b.NextBatch(cb[:0], 8)
		if len(ca) != len(cb) {
			t.Fatalf("round %d: %d vs %d commands", r, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("round %d cmd %d: %+v vs %+v", r, i, ca[i], cb[i])
			}
			c := ca[i]
			if c.Op == TraceReweight || c.Op == TraceJoin {
				// maxNum 8 caps anchors; churn joins use 2/64.
				if c.Weight.Sign() <= 0 {
					t.Fatalf("round %d: non-positive weight %s", r, c.Weight)
				}
			}
		}
		if r%5 == 4 {
			a.Advanced()
			b.Advanced()
		}
	}
}

// TestShapeStreamIdlePhase checks a rate-0 phase emits nothing but the
// stream still progresses to the next phase.
func TestShapeStreamIdlePhase(t *testing.T) {
	s, err := ShapeByName("idle=2:0:1:0,busy=1:1:1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewShapeStream(s, stats.NewStream(1, 0), "W", func(i int) string { return "a" }, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	var buf []Cmd
	for r := 0; r < 6; r++ {
		buf = ss.NextBatch(buf[:0], 4)
		got = append(got, len(buf))
	}
	want := []int{0, 0, 4, 0, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch sizes %v, want %v", got, want)
		}
	}
}

// TestShapeStreamChurnBounded checks churn never holds more than
// churnWindow short-lived tasks and only leaves tasks whose joins were
// flushed.
func TestShapeStreamChurnBounded(t *testing.T) {
	s, err := ShapeByName("churny=8:2:4:1")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewShapeStream(s, stats.NewStream(3, 1), "W", func(i int) string { return "a" }, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	joined := map[string]bool{}  // flushed joins, eligible to leave
	pending := map[string]bool{} // posted but not yet flushed
	var buf []Cmd
	for r := 0; r < 400; r++ {
		buf = ss.NextBatch(buf[:0], 8)
		for _, c := range buf {
			switch c.Op {
			case TraceJoin:
				if !strings.HasPrefix(c.Task, "W-c") {
					t.Fatalf("churn join outside the stream namespace: %q", c.Task)
				}
				pending[c.Task] = true
			case TraceLeave:
				if !joined[c.Task] {
					t.Fatalf("round %d: leave of %q before its join was flushed", r, c.Task)
				}
				delete(joined, c.Task)
			case TraceReweight:
			default:
				t.Fatalf("unexpected op %v", c.Op)
			}
		}
		if alive := len(joined) + len(pending); alive > churnWindow {
			t.Fatalf("round %d: %d churn tasks alive, window is %d", r, alive, churnWindow)
		}
		if r%3 == 2 {
			ss.Advanced()
			for k := range pending {
				joined[k] = true
			}
			pending = map[string]bool{}
		}
	}
}
