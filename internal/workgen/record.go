package workgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/frac"
	"repro/internal/model"
)

// Record and Replay speak the daemon's public JSON API with a minimal
// client of their own (see the package comment: sharing internal/serve
// code would let the generator inherit a bug from the system under
// test). Record pulls each shard's snapshot and keeps only the
// replayable part — config, applied log, horizon, digest. Replay drives
// a fresh daemon through the identical slot/command sequence and proves
// the recorded digests reproduce.

// maxReplayBatch bounds commands per POST so a huge slot stays well
// under the server's 1 MiB body limit.
const maxReplayBatch = 256

// maxAdvance bounds slots per advance POST (the server rejects more).
const maxAdvance = 1 << 20

// Record fetches a snapshot from every shard of the daemon at base
// (e.g. "http://127.0.0.1:9470") and assembles a trace. The daemon
// keeps running; snapshots are read-only. Commands still sitting in a
// slot batch or a deferral queue are not yet applied and therefore not
// part of the trace — record after a final advance has flushed them,
// or the trace ends at the last applied state.
func Record(client *http.Client, base string, shards int) (*Trace, error) {
	if shards < 1 {
		return nil, fmt.Errorf("workgen: record needs shards >= 1, got %d", shards)
	}
	tr := &Trace{Shards: make([]ShardTrace, 0, shards)}
	for s := 0; s < shards; s++ {
		st, err := recordShard(client, base, s)
		if err != nil {
			return nil, err
		}
		tr.Shards = append(tr.Shards, st)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// snapshotWire mirrors the fields of serve's shard snapshot JSON that a
// trace needs. Unknown fields (admission books, pending queues beyond
// the counts below) are ignored.
type snapshotWire struct {
	Version int             `json:"version"`
	Shard   int             `json:"shard"`
	Config  shardConfigWire `json:"config"`
	Now     int64           `json:"now"`
	Seed    model.System    `json:"seed"`
	Log     []core.Command  `json:"log"`

	Batch         []json.RawMessage `json:"batch"`
	DeferredJoins []json.RawMessage `json:"deferred_joins"`

	Digest uint64 `json:"digest"`
}

type shardConfigWire struct {
	M              int      `json:"m"`
	Policy         string   `json:"policy"`
	OIThreshold    frac.Rat `json:"oi_threshold"`
	EarlyRelease   bool     `json:"early_release"`
	RecordSchedule bool     `json:"record_schedule"`
}

func recordShard(client *http.Client, base string, shard int) (ShardTrace, error) {
	var st ShardTrace
	var snap snapshotWire
	if err := getJSON(client, fmt.Sprintf("%s/v1/shards/%d/snapshot", base, shard), &snap); err != nil {
		return st, fmt.Errorf("workgen: record shard %d: %w", shard, err)
	}
	if snap.Version != 1 {
		return st, fmt.Errorf("workgen: record shard %d: snapshot version %d, this recorder reads v1", shard, snap.Version)
	}
	if snap.Shard != shard {
		return st, fmt.Errorf("workgen: record shard %d: snapshot says shard %d", shard, snap.Shard)
	}
	// A v1 trace carries no seed task set: serve shards always start
	// empty, and the trace replays every join explicitly.
	if len(snap.Seed.Tasks) != 0 {
		return st, fmt.Errorf("workgen: record shard %d: seed system has %d tasks; not representable in a v1 trace",
			shard, len(snap.Seed.Tasks))
	}
	policy := snap.Config.Policy
	if policy == "" {
		policy = "oi"
	}
	st = ShardTrace{
		Shard:          shard,
		M:              snap.Config.M,
		Policy:         policy,
		OIThreshold:    snap.Config.OIThreshold,
		EarlyRelease:   snap.Config.EarlyRelease,
		RecordSchedule: snap.Config.RecordSchedule,
		Now:            snap.Now,
		Digest:         snap.Digest,
		Log:            snap.Log,
	}
	return st, nil
}

// ReplayShardResult reports one shard's replay outcome.
type ReplayShardResult struct {
	Shard    int
	Commands int
	Slots    int64
	// Digest is the fresh daemon's state digest after the replay; Want
	// is the recorded one. Match reports equality.
	Digest uint64
	Want   uint64
	Match  bool
}

// Replay drives the trace against the fresh daemon at base, shard by
// shard: for each recorded slot it posts that slot's commands while the
// shard clock sits on the slot, then advances so the boundary flush
// applies them — reproducing the recorded application order exactly.
// Every command must be re-admitted (a recorded log replays without
// rejection: replay headroom is always at least the original run's),
// and every shard must finish on its recorded digest; the first
// divergence is an error. The per-shard results are returned even on
// digest mismatch so callers can report which shards diverged.
func Replay(client *http.Client, base string, tr *Trace) ([]ReplayShardResult, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	results := make([]ReplayShardResult, 0, len(tr.Shards))
	mismatch := false
	for i := range tr.Shards {
		res, err := replayShard(client, base, &tr.Shards[i])
		if err != nil {
			return results, err
		}
		results = append(results, res)
		if !res.Match {
			mismatch = true
		}
	}
	if mismatch {
		for _, r := range results {
			if !r.Match {
				return results, fmt.Errorf("workgen: replay shard %d digest %016x, recorded %016x",
					r.Shard, r.Digest, r.Want)
			}
		}
	}
	return results, nil
}

func replayShard(client *http.Client, base string, st *ShardTrace) (ReplayShardResult, error) {
	res := ReplayShardResult{Shard: st.Shard, Commands: len(st.Log), Slots: st.Now, Want: st.Digest}
	// The target shard must be fresh and identically configured, or the
	// digests cannot possibly agree; fail fast with a better message
	// than "mismatch".
	var status struct {
		Now    int64  `json:"now"`
		Policy string `json:"policy"`
		M      int    `json:"m"`
	}
	shardURL := fmt.Sprintf("%s/v1/shards/%d", base, st.Shard)
	if err := getJSON(client, shardURL, &status); err != nil {
		return res, fmt.Errorf("workgen: replay shard %d: %w", st.Shard, err)
	}
	if status.Now != 0 {
		return res, fmt.Errorf("workgen: replay shard %d: target clock at t=%d, need a fresh daemon", st.Shard, status.Now)
	}
	if status.M != st.M || status.Policy != st.Policy {
		return res, fmt.Errorf("workgen: replay shard %d: target is m=%d policy=%s, trace is m=%d policy=%s",
			st.Shard, status.M, status.Policy, st.M, st.Policy)
	}
	now := int64(0)
	i := 0
	for i < len(st.Log) {
		at := int64(st.Log[i].At)
		if err := advanceTo(client, shardURL, &now, at); err != nil {
			return res, fmt.Errorf("workgen: replay shard %d: %w", st.Shard, err)
		}
		j := i
		for j < len(st.Log) && int64(st.Log[j].At) == at {
			j++
		}
		if err := postCommands(client, shardURL, st.Log[i:j]); err != nil {
			return res, fmt.Errorf("workgen: replay shard %d slot %d: %w", st.Shard, at, err)
		}
		i = j
	}
	// The final advance flushes the last slot's batch and lands the
	// clock on the recorded horizon.
	if err := advanceTo(client, shardURL, &now, st.Now); err != nil {
		return res, fmt.Errorf("workgen: replay shard %d: %w", st.Shard, err)
	}
	var state struct {
		Now    int64  `json:"now"`
		Digest uint64 `json:"digest"`
	}
	if err := getJSON(client, shardURL+"/state", &state); err != nil {
		return res, fmt.Errorf("workgen: replay shard %d: %w", st.Shard, err)
	}
	if state.Now != st.Now {
		return res, fmt.Errorf("workgen: replay shard %d: clock ended at t=%d, trace horizon t=%d", st.Shard, state.Now, st.Now)
	}
	res.Digest = state.Digest
	res.Match = state.Digest == st.Digest
	return res, nil
}

// advanceTo moves the shard clock from *now to target via advance
// POSTs, chunked under the server's per-request slot limit.
func advanceTo(client *http.Client, shardURL string, now *int64, target int64) error {
	for *now < target {
		slots := target - *now
		if slots > maxAdvance {
			slots = maxAdvance
		}
		body, err := json.Marshal(struct {
			Slots int64 `json:"slots"`
		}{slots})
		if err != nil {
			return err
		}
		var resp struct {
			Now int64 `json:"now"`
		}
		if err := postJSON(client, shardURL+"/advance", body, &resp); err != nil {
			return fmt.Errorf("advance to t=%d: %w", target, err)
		}
		if resp.Now != *now+slots {
			return fmt.Errorf("advance to t=%d: daemon reports t=%d, expected t=%d", target, resp.Now, *now+slots)
		}
		*now = resp.Now
	}
	return nil
}

// postCommands submits one recorded slot's commands in order, chunked,
// and requires every one of them to be re-admitted.
func postCommands(client *http.Client, shardURL string, cmds []core.Command) error {
	for len(cmds) > 0 {
		n := len(cmds)
		if n > maxReplayBatch {
			n = maxReplayBatch
		}
		reqs := make([]commandReq, n)
		for i := 0; i < n; i++ {
			c := &cmds[i]
			op, err := traceOpOf(c.Op)
			if err != nil {
				return err
			}
			switch op { // exhaustive: only wire-postable ops replay over HTTP (eventexhaust)
			case TraceJoin:
				reqs[i] = commandReq{Op: "join", Task: c.Task, Weight: c.Weight.String(), Group: c.Group}
			case TraceLeave:
				reqs[i] = commandReq{Op: "leave", Task: c.Task}
			case TraceReweight:
				reqs[i] = commandReq{Op: "reweight", Task: c.Task, Weight: c.Weight.String()}
			case TraceDelay, TraceAbsent:
				return fmt.Errorf("op %s is not replayable over the wire", op)
			}
		}
		body, err := json.Marshal(reqs)
		if err != nil {
			return err
		}
		var results []commandResult
		if err := postJSON(client, shardURL+"/commands", body, &results); err != nil {
			return err
		}
		if len(results) != n {
			return fmt.Errorf("posted %d commands, daemon answered %d results", n, len(results))
		}
		for i, r := range results {
			if r.Status != "queued" {
				return fmt.Errorf("command %d (%s %s) not re-admitted: %s %s (a recorded log must replay cleanly)",
					i, reqs[i].Op, reqs[i].Task, r.Error, r.Reason)
			}
		}
		cmds = cmds[n:]
	}
	return nil
}

// commandReq / commandResult are workgen's own copies of the public
// wire vocabulary (docs/SERVE.md), kept independent of internal/serve.
type commandReq struct {
	Op     string `json:"op"`
	Task   string `json:"task"`
	Weight string `json:"weight,omitempty"`
	Group  string `json:"group,omitempty"`
}

type commandResult struct {
	Status string `json:"status"`
	Code   int    `json:"code,omitempty"`
	Error  string `json:"error,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// getJSON fetches url and decodes a 200 JSON body into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	return decodeReply(resp, url, out)
}

// postJSON posts body to url and decodes a 200 JSON reply into out.
func postJSON(client *http.Client, url string, body []byte, out any) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return decodeReply(resp, url, out)
}

func decodeReply(resp *http.Response, url string, out any) error {
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("%s: reading body: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, firstLine(data))
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("%s: decoding reply: %w", url, err)
	}
	return nil
}

// firstLine trims an error body to something printable.
func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
