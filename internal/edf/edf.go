// Package edf implements the two non-Pfair baselines the paper's
// concluding remarks weigh PD²-OI against: global EDF (the companion paper
// [7]) and partitioned EDF (the companion paper [4]).
//
// Tasks are modeled as streams of unit-quantum jobs on the exact Pfair
// window pattern: within an epoch that starts at time E with weight w, job
// k is released at E + ⌊(k-1)/w⌋ with deadline E + ⌈k/w⌉ — earliest-
// deadline-first without the PD² b-bit tie-break. This gives each task
// exactly its utilization and makes the workload directly comparable to the
// Pfair subtask streams of internal/core. A weight change takes effect at
// the next job boundary, starting a new epoch (the natural point for EDF
// reweighting).
//
// The baselines exhibit exactly the trade-offs the paper describes:
//
//   - Global EDF reacts quickly to weight changes and migrates rarely, but
//     it is not Pfair-optimal: under load it misses deadlines, and its
//     deviation from the ideal processor-sharing schedule is bounded only
//     through tardiness bounds. Tardiness is tracked per task.
//   - Partitioned EDF forbids migration entirely; a weight increase that
//     does not fit on the task's processor forces either a repartitioning
//     move (a migration) or an outright rejection — fine-grained
//     reweighting under partitioning is provably impossible, and the
//     Rejected counter shows it happening.
package edf

import (
	"fmt"
	"sort"

	"repro/internal/frac"
	"repro/internal/model"
)

// job is one unit-quantum job.
type job struct {
	release  model.Time
	deadline model.Time
	done     bool
}

// task is a unit-job sporadic task on Pfair-window releases.
type task struct {
	id    int
	name  string
	w     frac.Rat // current weight (takes effect at job boundaries)
	nextW frac.Rat // requested weight, applied at the next release

	epoch   model.Time // start of the current weight epoch
	k       int64      // index of the next job within the epoch (1-based)
	lastRel model.Time // release of the most recent job
	cur     *job

	cpu     int // partitioned: assigned processor; global: last processor
	psCum   frac.Rat
	done    int64
	tardy   int64 // max observed tardiness in slots
	missed  int64 // jobs completed after their deadline
	moved   int64 // partitioned: repartitioning moves; global: migrations
	reject  int64 // partitioned: reweight requests that could not be placed
	pending bool  // a reweight request awaits the next boundary
}

// nextRelease returns the release time of the task's next job.
func (tk *task) nextRelease() model.Time {
	return tk.epoch + frac.FloorDivInt(tk.k-1, tk.w)
}

// jobDeadline returns the deadline of the task's next job.
func (tk *task) jobDeadline() model.Time {
	return tk.epoch + frac.CeilDivInt(tk.k, tk.w)
}

// Metrics is a per-task snapshot.
type Metrics struct {
	Name         string
	Weight       frac.Rat
	Done         int64    // quanta completed
	CumPS        frac.Rat // ideal processor-sharing allocation
	MaxTardiness int64    // worst completion lateness, in slots
	TardyJobs    int64    // jobs that completed after their deadline
	Moves        int64    // migrations (global) / repartitioning moves (partitioned)
	Rejected     int64    // reweight requests with no feasible placement (partitioned)
}

// PercentOfIdeal returns Done / CumPS (1 when the ideal is zero).
func (m Metrics) PercentOfIdeal() float64 {
	if m.CumPS.IsZero() {
		return 1
	}
	return float64(m.Done) / m.CumPS.Float64()
}

// Scheduler is a unit-job EDF scheduler, global or partitioned.
type Scheduler struct {
	m           int
	partitioned bool
	now         model.Time
	tasks       []*task
	byName      map[string]*task
	// partitioned: per-CPU committed utilization.
	cpuLoad []frac.Rat
}

// NewGlobal returns a global EDF scheduler on m processors.
func NewGlobal(m int) *Scheduler { return newScheduler(m, false) }

// NewPartitioned returns a partitioned EDF scheduler on m processors with
// first-fit placement.
func NewPartitioned(m int) *Scheduler { return newScheduler(m, true) }

func newScheduler(m int, partitioned bool) *Scheduler {
	if m < 1 {
		panic("edf: need at least one processor")
	}
	return &Scheduler{
		m:           m,
		partitioned: partitioned,
		byName:      make(map[string]*task),
		cpuLoad:     make([]frac.Rat, m),
	}
}

// Now returns the current time.
func (s *Scheduler) Now() model.Time { return s.now }

// Join adds a task. Under partitioning it is placed first-fit; joining
// fails if no processor has room.
func (s *Scheduler) Join(name string, w frac.Rat) error {
	if err := model.CheckWeight(w); err != nil {
		return err
	}
	if _, dup := s.byName[name]; dup {
		return fmt.Errorf("edf: duplicate task %q", name)
	}
	t := &task{
		id: len(s.tasks), name: name,
		w: w, nextW: w,
		epoch: s.now, k: 1, cpu: -1,
	}
	if s.partitioned {
		cpu := s.firstFit(w, -1)
		if cpu < 0 {
			return fmt.Errorf("edf: no processor can fit %s (weight %s)", name, w)
		}
		t.cpu = cpu
		s.cpuLoad[cpu] = s.cpuLoad[cpu].Add(w)
	}
	s.tasks = append(s.tasks, t)
	s.byName[name] = t
	return nil
}

// firstFit returns the lowest-indexed processor that can absorb weight w
// (excluding `exclude`), or -1.
func (s *Scheduler) firstFit(w frac.Rat, exclude int) int {
	for c := 0; c < s.m; c++ {
		if c == exclude {
			continue
		}
		if s.cpuLoad[c].Add(w).LessEq(frac.One) {
			return c
		}
	}
	return -1
}

// Reweight requests a new weight. It takes effect at the task's next job
// boundary. Under partitioning, if the new weight no longer fits on the
// task's processor, the scheduler tries to move the task elsewhere (a
// repartitioning migration); if nothing fits, the request is rejected and
// the old weight kept — the impossibility the paper proves.
func (s *Scheduler) Reweight(name string, w frac.Rat) error {
	t, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("edf: unknown task %s", name)
	}
	if err := model.CheckWeight(w); err != nil {
		return err
	}
	if s.partitioned {
		// Placement is resolved at request time so the capacity is
		// reserved; a still-pending earlier request holds its reservation,
		// which this request replaces.
		reserved := t.w
		if t.pending {
			reserved = t.nextW
		}
		newLoad := s.cpuLoad[t.cpu].Sub(reserved).Add(w)
		if frac.One.Less(newLoad) {
			dst := s.firstFit(w, t.cpu)
			if dst < 0 {
				t.reject++
				return nil // rejected: keep the old weight
			}
			s.cpuLoad[t.cpu] = s.cpuLoad[t.cpu].Sub(reserved)
			s.cpuLoad[dst] = s.cpuLoad[dst].Add(w)
			t.cpu = dst
			t.moved++
		} else {
			s.cpuLoad[t.cpu] = newLoad
		}
	}
	t.nextW = w
	t.pending = true
	return nil
}

// Metrics returns the snapshot for one task.
func (s *Scheduler) Metrics(name string) (Metrics, bool) {
	t, ok := s.byName[name]
	if !ok {
		return Metrics{}, false
	}
	return Metrics{
		Name: t.name, Weight: t.w, Done: t.done, CumPS: t.psCum,
		MaxTardiness: t.tardy, TardyJobs: t.missed, Moves: t.moved, Rejected: t.reject,
	}, true
}

// AllMetrics returns snapshots for every task in creation order.
func (s *Scheduler) AllMetrics() []Metrics {
	out := make([]Metrics, len(s.tasks))
	for i, t := range s.tasks {
		out[i], _ = s.Metrics(t.name)
	}
	return out
}

// Step simulates one slot.
func (s *Scheduler) Step() {
	t := s.now
	// Releases. A pending reweight lands at the current job's completion
	// (the earliest job boundary) and re-bases the release pattern on the
	// new weight: the next job comes one new-weight gap after the previous
	// job's release, but never retroactively (no backlog of "missed" jobs
	// and no free quantum). EDF can enact changes this quickly precisely
	// because it has no Pfair window invariants to preserve — the price is
	// that new demand can exceed capacity and show up as tardiness.
	for _, tk := range s.tasks {
		if tk.cur != nil {
			continue
		}
		if tk.pending {
			tk.w = tk.nextW
			tk.pending = false
			gap := frac.FloorDivInt(1, tk.w)
			next := maxTime(t, tk.lastRel+gap)
			tk.epoch = next - gap
			tk.k = 2
			if tk.lastRel == 0 && tk.done == 0 { // never released a job
				tk.epoch = t
				tk.k = 1
			}
		}
		rel := tk.nextRelease()
		if rel > t {
			continue
		}
		tk.cur = &job{release: rel, deadline: tk.jobDeadline()}
		tk.lastRel = rel
		tk.k++
	}
	// Pick up to M earliest-deadline jobs.
	var ready []*task
	for _, tk := range s.tasks {
		if tk.cur != nil && !tk.cur.done {
			ready = append(ready, tk)
		}
	}
	sort.Slice(ready, func(i, j int) bool {
		a, b := ready[i], ready[j]
		if a.cur.deadline != b.cur.deadline {
			return a.cur.deadline < b.cur.deadline
		}
		return a.id < b.id
	})
	if s.partitioned {
		// One job per processor: the earliest-deadline ready job on each.
		taken := make([]bool, s.m)
		for _, tk := range ready {
			if tk.cpu >= 0 && !taken[tk.cpu] {
				taken[tk.cpu] = true
				s.complete(tk, t)
			}
		}
	} else {
		n := len(ready)
		if n > s.m {
			n = s.m
		}
		// Affinity-based CPU assignment for migration accounting.
		busy := make([]bool, s.m)
		assigned := make([]int, n)
		for i := 0; i < n; i++ {
			assigned[i] = -1
			if c := ready[i].cpu; c >= 0 && !busy[c] {
				busy[c] = true
				assigned[i] = c
			}
		}
		next := 0
		for i := 0; i < n; i++ {
			if assigned[i] >= 0 {
				continue
			}
			for busy[next] {
				next++
			}
			assigned[i] = next
			busy[next] = true
		}
		for i := 0; i < n; i++ {
			tk := ready[i]
			if tk.cpu >= 0 && tk.cpu != assigned[i] {
				tk.moved++
			}
			tk.cpu = assigned[i]
			s.complete(tk, t)
		}
	}
	// Ideal PS accrual.
	for _, tk := range s.tasks {
		tk.psCum = tk.psCum.Add(tk.w)
	}
	s.now = t + 1
}

// complete finishes the task's current job in slot t and records tardiness.
func (s *Scheduler) complete(tk *task, t model.Time) {
	tk.cur.done = true
	tk.done++
	if late := (t + 1) - tk.cur.deadline; late > 0 {
		tk.missed++
		if late > tk.tardy {
			tk.tardy = late
		}
	}
	tk.cur = nil
}

// RunTo advances to the horizon, invoking hook (if non-nil) each slot.
func (s *Scheduler) RunTo(horizon model.Time, hook func(t model.Time, s *Scheduler)) {
	for s.now < horizon {
		if hook != nil {
			hook(s.now, s)
		}
		s.Step()
	}
}

func maxTime(a, b model.Time) model.Time {
	if a > b {
		return a
	}
	return b
}
