package edf

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/frac"
	"repro/internal/model"
)

func rat(s string) frac.Rat { return frac.MustParse(s) }

func TestJobWindows(t *testing.T) {
	// Weight 5/16 releases jobs on the Pfair pattern: 0,3,6,9,12 with
	// deadlines 4,7,10,13,16.
	tk := &task{w: rat("5/16"), k: 1}
	wantRel := []model.Time{0, 3, 6, 9, 12}
	wantDl := []model.Time{4, 7, 10, 13, 16}
	for i := range wantRel {
		if got := tk.nextRelease(); got != wantRel[i] {
			t.Errorf("release(%d) = %d, want %d", i+1, got, wantRel[i])
		}
		if got := tk.jobDeadline(); got != wantDl[i] {
			t.Errorf("deadline(%d) = %d, want %d", i+1, got, wantDl[i])
		}
		tk.k++
	}
	// Exactly 5 jobs are released before slot 16: utilization is exact.
	tk.k = 6
	if got := tk.nextRelease(); got != 16 {
		t.Errorf("release(6) = %d, want 16", got)
	}
}

func TestGlobalEDFBasics(t *testing.T) {
	s := NewGlobal(2)
	if err := s.Join("a", rat("1/2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Join("b", rat("1/4")); err != nil {
		t.Fatal(err)
	}
	if err := s.Join("a", rat("1/4")); err == nil {
		t.Error("duplicate join accepted")
	}
	if err := s.Join("c", frac.Zero); err == nil {
		t.Error("zero weight accepted")
	}
	s.RunTo(40, nil)
	ma, _ := s.Metrics("a")
	mb, _ := s.Metrics("b")
	if ma.Done != 20 || mb.Done != 10 {
		t.Errorf("done = %d/%d, want 20/10", ma.Done, mb.Done)
	}
	if ma.MaxTardiness != 0 || mb.MaxTardiness != 0 {
		t.Errorf("tardiness on an underloaded system: %d/%d", ma.MaxTardiness, mb.MaxTardiness)
	}
	if ma.PercentOfIdeal() != 1 || mb.PercentOfIdeal() != 1 {
		t.Errorf("pct = %v/%v", ma.PercentOfIdeal(), mb.PercentOfIdeal())
	}
}

func TestGlobalEDFReweightAtCompletion(t *testing.T) {
	s := NewGlobal(1)
	if err := s.Join("a", rat("1/10")); err != nil {
		t.Fatal(err)
	}
	s.RunTo(3, nil)
	if err := s.Reweight("a", rat("1/2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Reweight("nope", rat("1/2")); err == nil {
		t.Error("unknown task accepted")
	}
	// Job 1 completed in slot 0, so the task is at a job boundary: the new
	// weight starts a fresh epoch at t=3 and jobs release at 3,5,...,29.
	s.RunTo(30, nil)
	m, _ := s.Metrics("a")
	if m.Done != 15 {
		t.Errorf("done = %d, want 15 (1 old job + 14 at the new weight)", m.Done)
	}
	if !m.Weight.Eq(rat("1/2")) {
		t.Errorf("weight = %s", m.Weight)
	}
}

// TestGlobalEDFTardinessUnderLoad: global EDF is not optimal — a known
// overload pattern produces tardiness rather than a hard failure.
func TestGlobalEDFTardinessUnderLoad(t *testing.T) {
	s := NewGlobal(2)
	// Three tasks of weight 2/3-ish (period 2... use 1/2+) plus load: total
	// close to 2 with unit jobs of differing periods creates contention.
	for i := 0; i < 3; i++ {
		if err := s.Join(fmt.Sprintf("h%d", i), rat("1/2")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.Join(fmt.Sprintf("l%d", i), rat("1/10")); err != nil {
			t.Fatal(err)
		}
	}
	s.RunTo(200, nil)
	// Total utilization 2.0: global EDF on 2 CPUs with unit jobs generally
	// keeps up, but every task must at least complete close to its share.
	for _, m := range s.AllMetrics() {
		if m.PercentOfIdeal() < 0.85 {
			t.Errorf("task %s at %.2f%% of ideal", m.Name, m.PercentOfIdeal()*100)
		}
	}
}

func TestPartitionedFirstFit(t *testing.T) {
	s := NewPartitioned(2)
	// 1/2 + 1/2 fill CPU0; 1/2 goes to CPU1; another 3/4... 1/2 fits CPU1;
	// then a fifth 1/2 has no home.
	for i := 0; i < 4; i++ {
		if err := s.Join(fmt.Sprintf("t%d", i), rat("1/2")); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if err := s.Join("t4", rat("1/2")); err == nil {
		t.Error("overcommitted join accepted")
	}
	if s.byName["t0"].cpu != 0 || s.byName["t1"].cpu != 0 || s.byName["t2"].cpu != 1 || s.byName["t3"].cpu != 1 {
		t.Errorf("first-fit placement wrong: %d %d %d %d",
			s.byName["t0"].cpu, s.byName["t1"].cpu, s.byName["t2"].cpu, s.byName["t3"].cpu)
	}
	s.RunTo(40, nil)
	for _, m := range s.AllMetrics() {
		if m.Done != 20 {
			t.Errorf("%s done = %d, want 20", m.Name, m.Done)
		}
		if m.MaxTardiness != 0 {
			t.Errorf("%s tardy by %d on a feasible partition", m.Name, m.MaxTardiness)
		}
	}
}

// TestPartitionedReweightMovesOrRejects: an increase that no longer fits on
// the task's processor forces a repartitioning move; when no processor has
// room it is rejected — partitioning cannot reweight fine-grained.
func TestPartitionedReweightMovesOrRejects(t *testing.T) {
	s := NewPartitioned(2)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Join("a", rat("1/2"))) // cpu0
	must(s.Join("b", rat("2/5"))) // cpu0 (0.9)
	must(s.Join("c", rat("1/2"))) // cpu1
	s.RunTo(10, nil)

	// b wants 1/2: cpu0 would be at 1.0 — still fits.
	must(s.Reweight("b", rat("1/2")))
	mb, _ := s.Metrics("b")
	if mb.Moves != 0 || mb.Rejected != 0 {
		t.Errorf("in-place reweight moved/rejected: %+v", mb)
	}
	// a wants... c's cpu1 is at 1/2; a (1/2) requesting 1/2 no-op; instead
	// join d on cpu1 then force moves.
	must(s.Join("d", rat("2/5"))) // cpu1 at 9/10
	// d wants 1/2: cpu1 would be 1.0: fits in place.
	must(s.Reweight("d", rat("1/2")))
	// Now both CPUs are fully committed (1.0 each); b wants to grow: no
	// home anywhere -> rejected, old weight kept.
	must(s.Reweight("b", rat("1/2"))) // no-op (same weight)
	s.RunTo(20, nil)
	must(s.Reweight("a", rat("1/2"))) // same weight: fine
	// Shrink b to make room on cpu0, then grow c beyond cpu1's capacity: it
	// must *move* to cpu0.
	must(s.Reweight("b", rat("1/10")))
	must(s.Reweight("c", rat("1/2"))) // same weight, no-op placement-wise
	s.RunTo(30, nil)
	must(s.Reweight("d", rat("1/2"))) // unchanged
	// Grow d to... d is 1/2 on cpu1 with c 1/2: cpu1 full. d -> cannot grow
	// beyond 1/2 (weights capped at 1 for EDF; use 3/5 to force a move).
	must(s.Reweight("d", rat("3/5"))) // cpu1 at 1.1 -> move to cpu0 (1/2+1/10+3/5=1.2? no)
	md, _ := s.Metrics("d")
	if md.Moves == 0 && md.Rejected == 0 {
		t.Errorf("expected a move or rejection for d: %+v", md)
	}
	if len(s.AllMetrics()) != 4 {
		t.Errorf("task count wrong")
	}
}

// TestPartitionedRejectionKeepsOldWeight: a rejected increase leaves the
// task at its old weight, and the deficit against I_PS (computed at the
// *requested* weight by the caller) is the drift partitioning cannot avoid.
func TestPartitionedRejectionKeepsOldWeight(t *testing.T) {
	s := NewPartitioned(1)
	if err := s.Join("a", rat("1/2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Join("b", rat("1/2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Reweight("b", rat("3/4")); err != nil {
		t.Fatal(err)
	}
	mb, _ := s.Metrics("b")
	if mb.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", mb.Rejected)
	}
	if !mb.Weight.Eq(rat("1/2")) {
		t.Errorf("weight changed despite rejection: %s", mb.Weight)
	}
}

// TestGlobalVsPartitionedMigrations: global EDF migrates; partitioned EDF
// never does (moves only happen at explicit repartitionings).
func TestGlobalVsPartitionedMigrations(t *testing.T) {
	build := func(s *Scheduler) {
		for i := 0; i < 3; i++ {
			if err := s.Join(fmt.Sprintf("h%d", i), rat("1/2")); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := NewGlobal(2)
	build(g)
	g.RunTo(100, nil)
	var gm int64
	for _, m := range g.AllMetrics() {
		gm += m.Moves
	}

	p := NewPartitioned(2)
	build(p)
	p.RunTo(100, nil)
	var pm int64
	for _, m := range p.AllMetrics() {
		pm += m.Moves
	}
	if pm != 0 {
		t.Errorf("partitioned EDF migrated %d times", pm)
	}
	_ = gm // global may or may not migrate under affinity; just ensure it ran
	for _, m := range g.AllMetrics() {
		if m.Done == 0 {
			t.Errorf("global task %s never ran", m.Name)
		}
	}
}

// TestRandomizedEDFSanity: random feasible-by-construction workloads keep
// both schedulers near their ideal allocations.
func TestRandomizedEDFSanity(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		g := NewGlobal(2)
		p := NewPartitioned(2)
		total := frac.Zero
		for i := 0; i < 8; i++ {
			den := r.Int63n(16) + 2
			num := r.Int63n(den/2) + 1
			w := frac.New(num, den)
			if rat("9/5").Less(total.Add(w)) {
				continue
			}
			total = total.Add(w)
			name := fmt.Sprintf("t%d", i)
			if err := g.Join(name, w); err != nil {
				t.Fatal(err)
			}
			if err := p.Join(name, w); err != nil {
				// First-fit can fail below capacity; skip this task there.
				continue
			}
		}
		g.RunTo(150, nil)
		p.RunTo(150, nil)
		for _, m := range g.AllMetrics() {
			if m.PercentOfIdeal() < 0.8 {
				t.Errorf("trial %d global: %s at %.2f", trial, m.Name, m.PercentOfIdeal())
			}
		}
		for _, m := range p.AllMetrics() {
			if m.MaxTardiness > 0 {
				t.Errorf("trial %d partitioned: %s tardy on a feasible partition", trial, m.Name)
			}
		}
	}
}

var _ = model.Time(0)

// TestPartitionedRepeatedReweightAccounting: replacing a still-pending
// request must release the previous reservation, not the enacted weight —
// otherwise capacity accounting drifts and later requests are wrongly
// rejected or accepted.
func TestPartitionedRepeatedReweightAccounting(t *testing.T) {
	s := NewPartitioned(1)
	if err := s.Join("a", rat("1/4")); err != nil {
		t.Fatal(err)
	}
	// Reserve 3/4, then immediately shrink the request back to 1/4, three
	// times: accounting must end exactly where it started.
	for i := 0; i < 3; i++ {
		if err := s.Reweight("a", rat("3/4")); err != nil {
			t.Fatal(err)
		}
		if err := s.Reweight("a", rat("1/4")); err != nil {
			t.Fatal(err)
		}
	}
	if !s.cpuLoad[0].Eq(rat("1/4")) {
		t.Fatalf("cpu load = %s, want 1/4", s.cpuLoad[0])
	}
	// A second task of weight 3/4 must still fit.
	if err := s.Join("b", rat("3/4")); err != nil {
		t.Fatalf("join b rejected after balanced reweights: %v", err)
	}
	// And now a's pending-replacement path under contention: a holds 1/4,
	// requests 1/2 (doesn't fit: 1/4+3/4 committed), gets rejected.
	if err := s.Reweight("a", rat("1/2")); err != nil {
		t.Fatal(err)
	}
	m, _ := s.Metrics("a")
	if m.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", m.Rejected)
	}
	if !s.cpuLoad[0].Eq(frac.One) {
		t.Fatalf("cpu load = %s, want 1", s.cpuLoad[0])
	}
}
