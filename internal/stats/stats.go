// Package stats provides the small statistical toolkit the experiments
// need: a deterministic splittable random number generator (so that all 61
// randomized runs of each Whisper configuration are reproducible), sample
// summaries, and the 98% Student-t confidence intervals the paper reports.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// RNG is a deterministic splittable pseudo-random generator (SplitMix64).
// It is intentionally tiny: the experiments only need uniform floats and
// bounded integers, reproducible across platforms.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// NewStream derives an independent generator for (seed, stream). Runs of an
// experiment use stream = run index so each run is reproducible in
// isolation.
func NewStream(seed, stream uint64) *RNG {
	r := NewRNG(seed ^ (stream * 0x9e3779b97f4a7c15))
	// Warm up to decorrelate nearby streams.
	r.Uint64()
	r.Uint64()
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
//
// The naive r.Uint64() % n is biased: the 2^64 mod n smallest residues
// occur one extra time. Rejection sampling removes the bias: draws in the
// top 2^64 mod n values are redrawn, so every residue is exactly equally
// likely. The rejected region covers only n/2^64 of the space, so for the
// n used here (task counts, slot indices) a redraw essentially never
// occurs and existing seeded experiment streams are unchanged — each call
// still consumes exactly one Uint64 on accept.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	un := uint64(n)
	lim := -un % un // 2^64 mod n
	v := r.Uint64()
	for lim != 0 && v >= -lim { // -lim == 2^64 - lim, the unbiased bound
		v = r.Uint64()
	}
	return int(v % un)
}

// Bounded returns a uniform int in [0, n), like Intn, via Lemire's
// nearly-divisionless method (Lemire, "Fast Random Integer Generation
// in an Interval", ACM TOMACS 2019). It panics if n <= 0.
//
// The draw is mapped into [0, n) by the high word of a 64×64→128-bit
// multiply instead of a modulo. The low word says whether the draw
// landed in the biased sliver: only when lo < n can the draw be biased,
// and only then is the exact threshold 2^64 mod n computed — so the
// expected cost is one multiply with no division at all, against two
// divisions per call for Intn. The result is exactly uniform, like
// Intn, but the two consume different draw mappings: Bounded is a NEW
// stream contract, not a drop-in for Intn under an existing seed.
// Callers that pin recorded experiment streams (internal/expr) stay on
// Intn; new load-generation paths (cmd/pd2load) use Bounded.
//
// TestBoundedUnbiased pins the uniformity, TestBoundedGolden the
// cross-platform draw sequence, and TestBoundedAllocFree the zero-
// allocation contract below.
//
//lint:noalloc load-generation hot path: one bounded draw per synthesized command
func (r *RNG) Bounded(n int) int {
	if n <= 0 {
		panic("stats: Bounded with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		// Slow path (probability n/2^64): reject draws below
		// 2^64 mod n so each of the n buckets keeps exactly
		// floor(2^64/n) or ceil(2^64/n) — after rejection, equal —
		// preimages.
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Angle returns a uniform angle in [0, 2π).
func (r *RNG) Angle() float64 {
	return r.Float64() * 2 * math.Pi
}

// Summary describes a sample: count, mean, sample standard deviation, and
// the half-width of the two-sided 98% confidence interval on the mean.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	CI98 float64 // half-width; the interval is Mean ± CI98
}

// Summarize computes a Summary of the sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n-1))
	ci := TCritical98(n-1) * std / math.Sqrt(float64(n))
	return Summary{N: n, Mean: mean, Std: std, CI98: ci}
}

func (s Summary) String() string {
	return fmt.Sprintf("%.4f ±%.4f (n=%d)", s.Mean, s.CI98, s.N)
}

// tTable98 holds two-sided 98% (per-tail 1%) Student-t critical values by
// degrees of freedom.
var tTable98 = map[int]float64{
	1: 31.821, 2: 6.965, 3: 4.541, 4: 3.747, 5: 3.365,
	6: 3.143, 7: 2.998, 8: 2.896, 9: 2.821, 10: 2.764,
	11: 2.718, 12: 2.681, 13: 2.650, 14: 2.624, 15: 2.602,
	16: 2.583, 17: 2.567, 18: 2.552, 19: 2.539, 20: 2.528,
	21: 2.518, 22: 2.508, 23: 2.500, 24: 2.492, 25: 2.485,
	26: 2.479, 27: 2.473, 28: 2.467, 29: 2.462, 30: 2.457,
	35: 2.438, 40: 2.423, 45: 2.412, 50: 2.403, 55: 2.396,
	60: 2.390, 70: 2.381, 80: 2.374, 90: 2.368, 100: 2.364,
}

// TCritical98 returns the two-sided 98% Student-t critical value for the
// given degrees of freedom (>= 1), interpolating between tabulated rows and
// converging to the normal value 2.326 for large samples.
func TCritical98(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if v, ok := tTable98[df]; ok {
		return v
	}
	if df > 100 {
		return 2.326
	}
	// Linear interpolation between the nearest tabulated dfs.
	lo, hi := df, df
	for {
		lo--
		if _, ok := tTable98[lo]; ok {
			break
		}
	}
	for {
		hi++
		if _, ok := tTable98[hi]; ok {
			break
		}
	}
	a, b := tTable98[lo], tTable98[hi]
	frac := float64(df-lo) / float64(hi-lo)
	return a + frac*(b-a)
}

// Series accumulates samples grouped by an x-coordinate (one group per
// parameter-sweep point) and summarizes each group.
type Series struct {
	samples map[float64][]float64
}

// NewSeries returns an empty series.
func NewSeries() *Series {
	return &Series{samples: make(map[float64][]float64)}
}

// Add appends a sample at x.
func (s *Series) Add(x, value float64) {
	s.samples[x] = append(s.samples[x], value)
}

// Point is one summarized sweep point.
type Point struct {
	X float64
	Summary
}

// Points returns the per-x summaries in ascending x order.
func (s *Series) Points() []Point {
	xs := make([]float64, 0, len(s.samples))
	for x := range s.samples {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	out := make([]Point, len(xs))
	for i, x := range xs {
		out[i] = Point{X: x, Summary: Summarize(s.samples[x])}
	}
	return out
}

// MeanOf is a convenience for the plain average.
func MeanOf(xs []float64) float64 {
	return Summarize(xs).Mean
}

// MaxOf returns the maximum of the sample (0 for an empty sample).
func MaxOf(xs []float64) float64 {
	var m float64
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// MinOf returns the minimum of the sample (0 for an empty sample).
func MinOf(xs []float64) float64 {
	var m float64
	for i, x := range xs {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}
