package stats

import (
	"math"
	"math/bits"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a, b := NewStream(7, 0), NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams collided %d/100 times", same)
	}
	c, d := NewStream(7, 1), NewStream(7, 1)
	for i := 0; i < 50; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("same stream diverged")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean = %v, want near 0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("Intn bucket %d count %d, want ~1000", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

// TestIntnUnbiased detects the modulo bias that rejection sampling removes.
// With n = 3·2^61, 2^64 mod n = 2^62, so the naive Uint64()%n would hit
// each of the three 2^61-wide buckets with probabilities (3/8, 3/8, 1/4)
// instead of 1/3 each — a ~25% relative error on the last bucket, far
// outside the tolerance below. Rejection sampling restores uniformity.
func TestIntnUnbiased(t *testing.T) {
	const n = 3 << 61
	const draws = 30000
	r := NewRNG(7)
	var counts [3]int
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v>>61]++
	}
	for b, c := range counts {
		frac := float64(c) / draws
		if frac < 0.31 || frac > 0.36 {
			t.Errorf("bucket %d frequency %.4f, want ~1/3 (naive modulo gives 0.375/0.375/0.25)", b, frac)
		}
	}
}

// TestIntnStreamCompatible pins the stream-compatibility guarantee: for the
// small n the experiments use, the rejection region is vanishingly small,
// so Intn consumes exactly one Uint64 per call and produces the same
// sequence as the pre-fix modulo implementation.
func TestIntnStreamCompatible(t *testing.T) {
	a, b := NewRNG(11), NewRNG(11)
	for i := 0; i < 10000; i++ {
		n := 1 + i%977
		if got, want := a.Intn(n), int(b.Uint64()%uint64(n)); got != want {
			t.Fatalf("draw %d (n=%d): Intn=%d, modulo stream=%d", i, n, got, want)
		}
	}
}

func TestBounded(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		v := r.Bounded(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Bounded out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("Bounded bucket %d count %d, want ~1000", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Bounded(0) did not panic")
		}
	}()
	r.Bounded(0)
}

// TestBoundedUnbiased is TestIntnUnbiased for the multiply-shift
// mapping: with n = 3·2^61 the rejection sliver covers 3/8 of the draw
// space, so a Bounded that skipped the lo < thresh redraw would show
// the same (3/8, 3/8, 1/4) skew the naive modulo does. Uniform bucket
// frequencies certify the threshold test is live.
func TestBoundedUnbiased(t *testing.T) {
	const n = 3 << 61
	const draws = 30000
	r := NewRNG(7)
	var counts [3]int
	for i := 0; i < draws; i++ {
		v := r.Bounded(n)
		if v < 0 || v >= n {
			t.Fatalf("Bounded out of range: %d", v)
		}
		counts[v>>61]++
	}
	for b, c := range counts {
		frac := float64(c) / draws
		if frac < 0.31 || frac > 0.36 {
			t.Errorf("bucket %d frequency %.4f, want ~1/3", b, frac)
		}
	}
}

// TestBoundedGolden pins the cross-platform draw sequence: Bounded is a
// stream contract like Uint64, so the same seed must map to the same
// ints on every architecture and Go release. Regenerate only on a
// deliberate, documented stream break.
func TestBoundedGolden(t *testing.T) {
	r := NewRNG(42)
	cases := []struct {
		n    int
		want []int
	}{
		{2, []int{1, 0, 0, 0, 0, 1, 0, 1}},
		{6, []int{2, 3, 1, 2, 3, 3, 3, 1}},
		{10, []int{1, 4, 0, 6, 9, 0, 5, 6}},
		{97, []int{7, 26, 71, 76, 91, 67, 76, 81}},
		{1 << 20, []int{678527, 820150, 668497, 398482, 66086, 278976, 798181, 96434}},
		{3 << 61, []int{3668048368687255404, 1100266957054166901, 1888931134538199316, 5359584738417688998, 2223233573225240043, 584405146779190719, 985761028139543120, 3492460934075286089}},
	}
	for _, tc := range cases {
		for i, want := range tc.want {
			if got := r.Bounded(tc.n); got != want {
				t.Fatalf("Bounded(%d) draw %d = %d, want %d (stream contract broken)", tc.n, i, got, want)
			}
		}
	}
}

// TestBoundedMatchesLemireMapping cross-checks the implementation
// against a direct transcription of the algorithm on the same raw
// draws: hi word of x*n, redrawn while the lo word is under 2^64 mod n.
func TestBoundedMatchesLemireMapping(t *testing.T) {
	a, b := NewRNG(11), NewRNG(11)
	for i := 0; i < 10000; i++ {
		n := 1 + i%977
		un := uint64(n)
		var want int
		for {
			hi, lo := bits.Mul64(b.Uint64(), un)
			if lo >= un || lo >= -un%un {
				want = int(hi)
				break
			}
		}
		if got := a.Bounded(n); got != want {
			t.Fatalf("draw %d (n=%d): Bounded=%d, reference=%d", i, n, got, want)
		}
	}
}

// TestBoundedAllocFree pins the //lint:noalloc contract at runtime.
func TestBoundedAllocFree(t *testing.T) {
	r := NewRNG(5)
	sink := 0
	if allocs := testing.AllocsPerRun(1000, func() { sink += r.Bounded(17) }); allocs > 0 {
		t.Errorf("Bounded allocated %.1f times per draw", allocs)
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := NewRNG(9)
	s := 0
	for i := 0; i < b.N; i++ {
		s += r.Intn(977)
	}
	benchSink = s
}

func BenchmarkBounded(b *testing.B) {
	r := NewRNG(9)
	s := 0
	for i := 0; i < b.N; i++ {
		s += r.Bounded(977)
	}
	benchSink = s
}

var benchSink int

func TestAngle(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		a := r.Angle()
		if a < 0 || a >= 2*math.Pi {
			t.Fatalf("Angle out of range: %v", a)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s = Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Std != 0 || s.CI98 != 0 {
		t.Errorf("singleton summary = %+v", s)
	}
	// Known sample: 2, 4, 4, 4, 5, 5, 7, 9 has mean 5, sample std ~2.138.
	s = Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Std-2.1381) > 1e-3 {
		t.Errorf("std = %v, want ~2.138", s.Std)
	}
	wantCI := TCritical98(7) * s.Std / math.Sqrt(8)
	if math.Abs(s.CI98-wantCI) > 1e-12 {
		t.Errorf("CI = %v, want %v", s.CI98, wantCI)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestTCritical98(t *testing.T) {
	if v := TCritical98(60); v != 2.390 {
		t.Errorf("t(60) = %v", v)
	}
	if v := TCritical98(1); v != 31.821 {
		t.Errorf("t(1) = %v", v)
	}
	if v := TCritical98(1000); v != 2.326 {
		t.Errorf("t(1000) = %v", v)
	}
	// Interpolated value sits between its neighbours.
	v := TCritical98(33)
	if v >= TCritical98(30) || v <= TCritical98(35) {
		t.Errorf("t(33) = %v not between t(35)=%v and t(30)=%v", v, TCritical98(35), TCritical98(30))
	}
	if !math.IsNaN(TCritical98(0)) {
		t.Error("t(0) should be NaN")
	}
	// Monotone decreasing across the table.
	prev := math.Inf(1)
	for df := 1; df <= 120; df++ {
		v := TCritical98(df)
		if v > prev+1e-9 {
			t.Errorf("t(%d)=%v > t(%d)=%v", df, v, df-1, prev)
		}
		prev = v
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries()
	s.Add(2.0, 10)
	s.Add(1.0, 4)
	s.Add(2.0, 14)
	s.Add(1.0, 6)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].X != 1.0 || pts[0].Mean != 5 {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[1].X != 2.0 || pts[1].Mean != 12 {
		t.Errorf("second point = %+v", pts[1])
	}
}

func TestMinMaxMean(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if MaxOf(xs) != 7 || MinOf(xs) != -1 || MeanOf(xs) != 2.75 {
		t.Errorf("MaxOf/MinOf/MeanOf wrong: %v %v %v", MaxOf(xs), MinOf(xs), MeanOf(xs))
	}
	if MaxOf(nil) != 0 || MinOf(nil) != 0 {
		t.Error("empty Max/Min not zero")
	}
}
