package model

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/frac"
)

// TestFig1aPeriodicWindows checks the periodic windows of a weight-5/16 task
// against Fig. 1(a) of the paper: T_1 [0,4), T_2 [3,7), ..., and
// r(T_6) = 16.
func TestFig1aPeriodicWindows(t *testing.T) {
	w := frac.New(5, 16)
	want := []Window{
		{0, 4}, {3, 7}, {6, 10}, {9, 13}, {12, 16},
	}
	for i, win := range want {
		got := SubtaskWindow(w, 0, int64(i+1))
		if got != win {
			t.Errorf("window(T_%d) = %v, want %v", i+1, got, win)
		}
	}
	// b-bits: 1 for T_1..T_4, 0 for T_5 (window of T_5 does not overlap T_6).
	for i := int64(1); i <= 4; i++ {
		if BBit(w, i) != 1 {
			t.Errorf("b(T_%d) = %d, want 1", i, BBit(w, i))
		}
	}
	if BBit(w, 5) != 0 {
		t.Errorf("b(T_5) = %d, want 0", BBit(w, 5))
	}
	// In the absence of IS separations, r(T_{i+1}) = d(T_i) - b(T_i):
	// r(T_2) = 4 - 1 = 3 and r(T_6) = 16 - 0 = 16.
	if got := NextRelease(Deadline(w, 0, 1), BBit(w, 1), 0); got != 3 {
		t.Errorf("r(T_2) = %d, want 3", got)
	}
	if got := NextRelease(Deadline(w, 0, 5), BBit(w, 5), 0); got != 16 {
		t.Errorf("r(T_6) = %d, want 16", got)
	}
	if got := Release(w, 0, 6); got != 16 {
		t.Errorf("Release(T_6) = %d, want 16", got)
	}
}

// TestFig1bISWindows checks the IS variant from Fig. 1(b): the release of
// T_2 is delayed by two quanta and T_3 by an additional quantum, so the task
// is active in every slot except slot 4.
func TestFig1bISWindows(t *testing.T) {
	w := frac.New(5, 16)
	theta := []Time{0, 2, 3, 3, 3}
	wins := make([]Window, 5)
	for i := range wins {
		wins[i] = SubtaskWindow(w, theta[i], int64(i+1))
	}
	want := []Window{{0, 4}, {5, 9}, {9, 13}, {12, 16}, {15, 19}}
	for i := range want {
		if wins[i] != want[i] {
			t.Errorf("window(T_%d) = %v, want %v", i+1, wins[i], want[i])
		}
	}
	// Active everywhere in [0, 19) except slot 4.
	for slot := Time(0); slot < 19; slot++ {
		active := false
		for _, win := range wins {
			if win.Contains(slot) {
				active = true
				break
			}
		}
		if slot == 4 && active {
			t.Errorf("task active at slot 4, want inactive")
		}
		if slot != 4 && !active {
			t.Errorf("task inactive at slot %d, want active", slot)
		}
	}
}

func TestEpochArithmeticMatchesStatic(t *testing.T) {
	// Within a single epoch starting at time 0 with releases as early as
	// possible, Eqns (2)-(4) must reproduce the static IS formulas.
	weights := []frac.Rat{
		frac.New(5, 16), frac.New(3, 19), frac.New(2, 5),
		frac.New(1, 10), frac.New(1, 2), frac.New(1, 21), frac.New(3, 20),
	}
	for _, w := range weights {
		release := Time(0)
		for n := int64(1); n <= 20; n++ {
			if got, want := release, Release(w, 0, n); got != want {
				t.Fatalf("w=%s: r(T_%d) = %d, want %d", w, n, got, want)
			}
			d := EpochDeadline(w, release, n)
			if want := Deadline(w, 0, n); d != want {
				t.Fatalf("w=%s: d(T_%d) = %d, want %d", w, n, d, want)
			}
			b := EpochBBit(w, n)
			if want := BBit(w, n); b != want {
				t.Fatalf("w=%s: b(T_%d) = %d, want %d", w, n, b, want)
			}
			release = NextRelease(d, b, 0)
		}
	}
}

func TestWindowHelpers(t *testing.T) {
	w := Window{3, 7}
	if w.Len() != 4 {
		t.Errorf("Len = %d", w.Len())
	}
	if !w.Contains(3) || !w.Contains(6) || w.Contains(7) || w.Contains(2) {
		t.Error("Contains wrong at boundaries")
	}
	if got := w.Overlap(Window{6, 10}); got != 1 {
		t.Errorf("Overlap = %d, want 1", got)
	}
	if got := w.Overlap(Window{7, 10}); got != 0 {
		t.Errorf("Overlap disjoint = %d, want 0", got)
	}
	if got := w.Overlap(Window{0, 100}); got != 4 {
		t.Errorf("Overlap containing = %d, want 4", got)
	}
	if w.String() != "[3,7)" {
		t.Errorf("String = %s", w.String())
	}
}

func TestCheckWeight(t *testing.T) {
	if err := CheckWeight(frac.New(1, 2)); err != nil {
		t.Errorf("1/2: %v", err)
	}
	if err := CheckWeight(frac.One); err != nil {
		t.Errorf("1: %v", err)
	}
	if err := CheckWeight(frac.Zero); err == nil {
		t.Error("0 accepted")
	}
	if err := CheckWeight(frac.New(-1, 3)); err == nil {
		t.Error("-1/3 accepted")
	}
	if err := CheckWeight(frac.New(3, 2)); err == nil {
		t.Error("3/2 accepted")
	}
	if err := CheckLightWeight(frac.New(2, 3)); err == nil {
		t.Error("2/3 accepted as light")
	}
	if err := CheckLightWeight(frac.Half); err != nil {
		t.Errorf("1/2 rejected as light: %v", err)
	}
	if !IsHeavy(frac.New(2, 3)) || IsHeavy(frac.Half) {
		t.Error("IsHeavy wrong")
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Name: "T", Weight: frac.New(1, 3)}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	for _, bad := range []Spec{
		{Name: "", Weight: frac.New(1, 3)},
		{Name: "T", Weight: frac.Zero},
		{Name: "T", Weight: frac.New(1, 3), Join: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad spec %+v accepted", bad)
		}
	}
}

func TestPeriodic(t *testing.T) {
	s := Periodic("T", 2, 5)
	if !s.Weight.Eq(frac.New(2, 5)) {
		t.Errorf("weight = %s", s.Weight)
	}
	defer func() {
		if recover() == nil {
			t.Error("Periodic(e>p) did not panic")
		}
	}()
	Periodic("bad", 6, 5)
}

func TestSystemValidateAndFeasible(t *testing.T) {
	sys := System{M: 2, Tasks: []Spec{
		{Name: "A", Weight: frac.New(1, 2)},
		{Name: "B", Weight: frac.New(1, 2)},
		{Name: "C", Weight: frac.New(1, 2)},
		{Name: "D", Weight: frac.New(1, 2)},
	}}
	if err := sys.Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	if !sys.TotalWeight().Eq(frac.FromInt(2)) {
		t.Errorf("total weight = %s", sys.TotalWeight())
	}
	if !sys.Feasible() {
		t.Error("fully-utilized system reported infeasible")
	}
	sys.Tasks = append(sys.Tasks, Spec{Name: "E", Weight: frac.New(1, 10)})
	if sys.Feasible() {
		t.Error("overloaded system reported feasible")
	}

	dup := System{M: 1, Tasks: []Spec{
		{Name: "A", Weight: frac.New(1, 4)},
		{Name: "A", Weight: frac.New(1, 4)},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate names accepted")
	}
	if err := (System{M: 0}).Validate(); err == nil {
		t.Error("M=0 accepted")
	}
}

func TestReplicate(t *testing.T) {
	specs := Replicate(3, Spec{Name: "A", Weight: frac.New(1, 10), Group: "bg"})
	if len(specs) != 3 {
		t.Fatalf("len = %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if !s.Weight.Eq(frac.New(1, 10)) || s.Group != "bg" {
			t.Errorf("bad replica %+v", s)
		}
	}
	if len(names) != 3 {
		t.Errorf("names not unique: %v", names)
	}
}

// randWeight yields weights in (0, 1/2] with denominators <= 64, the range
// the paper's adaptive rules cover.
func randWeight(r *rand.Rand) frac.Rat {
	den := r.Int63n(63) + 2
	num := r.Int63n(den/2) + 1
	return frac.New(num, den)
}

func TestWindowPropertiesQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 1500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randWeight(r))
			vals[1] = reflect.ValueOf(r.Int63n(40) + 1)
		},
	}

	t.Run("WindowNonEmpty", func(t *testing.T) {
		// Every window has length >= ceil(1/w) - 1 >= 1.
		if err := quick.Check(func(w frac.Rat, i int64) bool {
			return SubtaskWindow(w, 0, i).Len() >= 1
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("ConsecutiveOverlapIsBBit", func(t *testing.T) {
		// In a periodic system, consecutive windows overlap by exactly the
		// b-bit.
		if err := quick.Check(func(w frac.Rat, i int64) bool {
			a := SubtaskWindow(w, 0, i)
			b := SubtaskWindow(w, 0, i+1)
			return a.Overlap(b) == BBit(w, i)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("BBitBinary", func(t *testing.T) {
		if err := quick.Check(func(w frac.Rat, i int64) bool {
			b := BBit(w, i)
			return b == 0 || b == 1
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("ReleasesMonotone", func(t *testing.T) {
		if err := quick.Check(func(w frac.Rat, i int64) bool {
			return Release(w, 0, i) <= Release(w, 0, i+1) &&
				Deadline(w, 0, i) <= Deadline(w, 0, i+1)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("LightWindowAtLeastThree", func(t *testing.T) {
		// Lemma used throughout the paper's proofs: for weight <= 1/2,
		// every subtask with a b-bit of 1 has a window length of at least 3.
		if err := quick.Check(func(w frac.Rat, i int64) bool {
			if BBit(w, i) != 1 {
				return true
			}
			return SubtaskWindow(w, 0, i).Len() >= 3
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("PeriodBoundary", func(t *testing.T) {
		// Over one hyperperiod, a task of weight e/p has exactly e subtasks
		// with deadlines at most p: d(T_e) = p.
		if err := quick.Check(func(w frac.Rat, _ int64) bool {
			e, p := w.Num(), w.Den()
			return Deadline(w, 0, e) == p && Release(w, 0, e+1) >= p-0 &&
				Release(w, 0, e+1) == p-BBit(w, e)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
}

// cascadeGroupDeadline computes the group deadline by direct definition: a
// cascade of forced decisions extends through consecutive length-two
// windows and resolves either at a non-overlapping boundary (b = 0, at that
// window's deadline) or inside the first window of length >= 3 (one slot
// before its deadline).
func cascadeGroupDeadline(w frac.Rat, i int64) Time {
	for j := i + 1; ; j++ {
		if BBit(w, j-1) == 0 {
			return Deadline(w, 0, j-1)
		}
		if SubtaskWindow(w, 0, j).Len() >= 3 {
			return Deadline(w, 0, j) - 1
		}
	}
}

// TestGroupDeadlineMatchesCascade cross-checks the closed-form group
// deadline against the cascade-walk definition for random heavy weights.
func TestGroupDeadlineMatchesCascade(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 400; trial++ {
		den := r.Int63n(28) + 3
		num := r.Int63n(den-1) + 1
		w := frac.New(num, den)
		if !IsHeavy(w) || w.Eq(frac.One) {
			continue
		}
		for i := int64(1); i <= 12; i++ {
			got := GroupDeadline(w, Release(w, 0, i), i)
			want := cascadeGroupDeadline(w, i)
			if got != want {
				t.Fatalf("w=%s: D(T_%d) = %d, cascade says %d", w, i, got, want)
			}
		}
	}
}

// TestGroupDeadlineProperties: monotone non-decreasing in the subtask index
// and never before the subtask's own deadline minus one.
func TestGroupDeadlineProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 800,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			den := r.Int63n(30) + 3
			num := den/2 + 1 + r.Int63n(den-den/2-1) // heavy, < 1
			if num >= den {
				num = den - 1
			}
			vals[0] = reflect.ValueOf(frac.New(num, den))
			vals[1] = reflect.ValueOf(r.Int63n(20) + 1)
		},
	}
	if err := quick.Check(func(w frac.Rat, i int64) bool {
		if !IsHeavy(w) || w.Eq(frac.One) {
			return true
		}
		d := Deadline(w, 0, i)
		g := GroupDeadline(w, Release(w, 0, i), i)
		gNext := GroupDeadline(w, Release(w, 0, i+1), i+1)
		return g >= d-1 && gNext >= g
	}, cfg); err != nil {
		t.Error(err)
	}
}
