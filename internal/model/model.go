// Package model defines the task models of the paper — periodic,
// intra-sporadic (IS) and adaptable intra-sporadic (AIS) — and the exact
// subtask window arithmetic they share.
//
// Under Pfair scheduling, processor time is allocated in unit quanta; slot t
// is the interval [t, t+1). Each quantum of a task's execution is a subtask
// T_i (i >= 1). For a task of weight wt = e/p, subtask T_i of an IS task
// with offset θ(T_i) has
//
//	release  r(T_i) = θ(T_i) + ⌊(i-1)/wt⌋
//	deadline d(T_i) = θ(T_i) + ⌈i/wt⌉
//	b-bit    b(T_i) = ⌈i/wt⌉ - ⌊i/wt⌋
//
// and must be scheduled within its window [r(T_i), d(T_i)).
//
// The AIS model (Sec. 3 of the paper) generalizes this by letting the weight
// be a function of time. Releases and deadlines are then computed from the
// *scheduling weight* (the last enacted weight) via Eqns (2)-(4), which this
// package exposes in epoch-relative form: after a weight change is enacted,
// subtask indices restart from 1 within the new "epoch" (formally, n = j - z
// where z = Id(T_j) - 1).
package model

import (
	"errors"
	"fmt"

	"repro/internal/frac"
)

// Time is a slot index (an integral number of quanta). Slot t covers the
// real-time interval [t, t+1).
type Time = int64

// Infinity is a Time value used for "never" (e.g. the halt time of a subtask
// that is never halted).
const Infinity Time = 1<<62 - 1

// Weight-range errors returned by validation helpers.
var (
	ErrWeightNonPositive = errors.New("model: weight must be positive")
	ErrWeightTooLarge    = errors.New("model: weight must be at most 1")
	ErrWeightHeavy       = errors.New("model: weight must be at most 1/2 (the paper's reweighting rules cover light tasks only)")
)

// MaxLightWeight is the largest weight the paper's reweighting analysis
// covers (Sec. 2: "we focus exclusively on tasks with weight at most 1/2").
var MaxLightWeight = frac.Half

// CheckWeight validates a Pfair weight: 0 < w <= 1.
//
//lint:allocok error construction on the rejection path only; the accept path is allocation-free
func CheckWeight(w frac.Rat) error {
	if w.Sign() <= 0 {
		return fmt.Errorf("%w (got %s)", ErrWeightNonPositive, w)
	}
	if frac.One.Less(w) {
		return fmt.Errorf("%w (got %s)", ErrWeightTooLarge, w)
	}
	return nil
}

// CheckLightWeight validates a weight usable with the adaptive (AIS)
// reweighting rules: 0 < w <= 1/2.
func CheckLightWeight(w frac.Rat) error {
	if err := CheckWeight(w); err != nil {
		return err
	}
	if MaxLightWeight.Less(w) {
		return fmt.Errorf("%w (got %s)", ErrWeightHeavy, w)
	}
	return nil
}

// IsHeavy reports whether w > 1/2.
func IsHeavy(w frac.Rat) bool { return MaxLightWeight.Less(w) }

// Window is a half-open slot interval [Release, Deadline).
type Window struct {
	Release  Time
	Deadline Time
}

// Len returns the window length in slots.
func (w Window) Len() int64 { return w.Deadline - w.Release }

// Contains reports whether slot t lies in the window.
func (w Window) Contains(t Time) bool { return w.Release <= t && t < w.Deadline }

// Overlap returns the number of slots shared by w and v.
func (w Window) Overlap(v Window) int64 {
	lo := max64(w.Release, v.Release)
	hi := min64(w.Deadline, v.Deadline)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func (w Window) String() string { return fmt.Sprintf("[%d,%d)", w.Release, w.Deadline) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// --- Static IS subtask arithmetic (Sec. 2) --------------------------------

// Release returns r(T_i) = θ + ⌊(i-1)/w⌋ for i >= 1. It panics if i < 1 or
// the weight is invalid.
func Release(w frac.Rat, theta Time, i int64) Time {
	mustIndex(i)
	mustWeight(w)
	return theta + frac.FloorDivInt(i-1, w)
}

// Deadline returns d(T_i) = θ + ⌈i/w⌉ for i >= 1.
func Deadline(w frac.Rat, theta Time, i int64) Time {
	mustIndex(i)
	mustWeight(w)
	return theta + frac.CeilDivInt(i, w)
}

// BBit returns b(T_i) = ⌈i/w⌉ - ⌊i/w⌋ ∈ {0, 1}. In a periodic system it is 1
// exactly when T_i's window overlaps T_{i+1}'s.
func BBit(w frac.Rat, i int64) int64 {
	mustIndex(i)
	mustWeight(w)
	return frac.CeilDivInt(i, w) - frac.FloorDivInt(i, w)
}

// SubtaskWindow returns the window [r(T_i), d(T_i)) of subtask i of an IS
// task with weight w and offset θ.
func SubtaskWindow(w frac.Rat, theta Time, i int64) Window {
	return Window{Release(w, theta, i), Deadline(w, theta, i)}
}

func mustIndex(i int64) {
	if i < 1 {
		panic(fmt.Sprintf("model: subtask index %d < 1", i))
	}
}

func mustWeight(w frac.Rat) {
	if err := CheckWeight(w); err != nil {
		panic(err)
	}
}

// --- Epoch-relative AIS subtask arithmetic (Eqns (2)-(4)) ------------------

// EpochDeadline returns the deadline of the n-th subtask of an epoch
// (n = j - z in the paper's notation, n >= 1) that was released at time r
// under scheduling weight w:
//
//	d(T_j) = r(T_j) + ⌈n/w⌉ - ⌊(n-1)/w⌋        (Eqn (2))
func EpochDeadline(w frac.Rat, release Time, n int64) Time {
	mustIndex(n)
	mustWeight(w)
	return release + frac.CeilDivInt(n, w) - frac.FloorDivInt(n-1, w)
}

// EpochBBit returns the b-bit of the n-th subtask of an epoch under
// scheduling weight w:
//
//	b(T_j) = ⌈n/w⌉ - ⌊n/w⌋                      (Eqn (3))
func EpochBBit(w frac.Rat, n int64) int64 { return BBit(w, n) }

// GroupDeadline returns the PD² group deadline of the n-th subtask of an
// epoch released at the given time under weight w — the second PD²
// tie-break, needed for tasks of weight greater than 1/2. A heavy task
// releases chains of length-two overlapping windows; one "wrong" decision
// forces a cascade of forced decisions that ends only at a window of
// length three or at a non-overlapping boundary. The group deadline is the
// time by which such a cascade resolves:
//
//	D(T_i) = base + ⌈ ⌈ ⌈n/w⌉·(1-w) ⌉ / (1-w) ⌉
//
// where base is the epoch start. For weight 1 there is never slack, so the
// group deadline is effectively infinite; for light tasks (w <= 1/2) group
// deadlines play no role and 0 is returned.
func GroupDeadline(w frac.Rat, release Time, n int64) Time {
	mustIndex(n)
	mustWeight(w)
	if !IsHeavy(w) {
		return 0
	}
	if w.Eq(frac.One) {
		return Infinity
	}
	base := release - frac.FloorDivInt(n-1, w)
	dRel := frac.CeilDivInt(n, w)
	oneMinus := frac.One.Sub(w)
	inner := oneMinus.MulInt(dRel).Ceil()
	return base + frac.CeilDivInt(inner, oneMinus)
}

// NextRelease returns the release of the successor subtask per Eqn (4):
//
//	r(T_{j+1}) = d(T_j) - b(T_j) + sep
//
// where sep = θ(T_{j+1}) - θ(T_j) >= 0 is the IS separation. It panics on a
// negative separation, which the IS model forbids.
func NextRelease(deadline Time, bbit int64, sep int64) Time {
	if sep < 0 {
		panic("model: negative IS separation")
	}
	if bbit != 0 && bbit != 1 {
		panic(fmt.Sprintf("model: b-bit %d out of range", bbit))
	}
	return deadline - bbit + sep
}

// --- Task specifications ---------------------------------------------------

// Spec describes one task of a (possibly adaptive) system as handed to the
// scheduler. Weight is the initial weight; for periodic tasks it equals
// e/p. Join is the time the task enters the system (0 for tasks present from
// the start).
type Spec struct {
	// Name identifies the task in traces and error messages. Names must be
	// unique within a system.
	Name string
	// Weight is the initial weight, 0 < Weight <= 1 (<= 1/2 for tasks that
	// will be reweighted by the AIS rules).
	Weight frac.Rat
	// Join is the time at which the task joins the system.
	Join Time
	// Group is an optional label used by configurable tie-breaks (the
	// paper's figures fix "ties broken in favor of" a named set).
	Group string
}

// Validate checks the spec's fields.
func (s Spec) Validate() error {
	if s.Name == "" {
		return errors.New("model: task spec needs a name")
	}
	if err := CheckWeight(s.Weight); err != nil {
		return fmt.Errorf("model: task %s: %w", s.Name, err)
	}
	if s.Join < 0 {
		return fmt.Errorf("model: task %s: negative join time %d", s.Name, s.Join)
	}
	return nil
}

// Periodic returns the spec of a periodic task with execution cost e and
// period p (weight e/p), starting at time 0.
func Periodic(name string, e, p int64) Spec {
	if e <= 0 || p <= 0 || e > p {
		panic(fmt.Sprintf("model: invalid periodic task %s: e=%d p=%d", name, e, p))
	}
	return Spec{Name: name, Weight: frac.New(e, p)}
}

// System is a static description of a task set and processor count, used to
// seed the scheduler and to run feasibility checks.
type System struct {
	M     int // number of processors
	Tasks []Spec
}

// Validate checks every spec, name uniqueness, and the processor count.
func (sys System) Validate() error {
	if sys.M < 1 {
		return fmt.Errorf("model: need at least one processor, got %d", sys.M)
	}
	seen := make(map[string]bool, len(sys.Tasks))
	for _, s := range sys.Tasks {
		if err := s.Validate(); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("model: duplicate task name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// TotalWeight returns the sum of all task weights (ignoring join times).
func (sys System) TotalWeight() frac.Rat {
	total := frac.Zero
	for _, s := range sys.Tasks {
		total = total.Add(s.Weight)
	}
	return total
}

// Feasible reports whether the total weight is at most M (the Pfair
// feasibility condition, and the paper's join condition J).
func (sys System) Feasible() bool {
	return sys.TotalWeight().LessEq(frac.FromInt(int64(sys.M)))
}

// WeightRequest is a weight-change request emitted by a workload driver:
// at some slot, the named task asks for a new share.
type WeightRequest struct {
	Task   string
	Weight frac.Rat
}

// Replicate appends n copies of the given spec with names base#0..base#n-1.
// It is a convenience for the paper's figure systems ("a set A of 35 tasks
// of weight 1/10").
func Replicate(n int, base Spec) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		s := base
		s.Name = fmt.Sprintf("%s#%d", base.Name, i)
		specs[i] = s
	}
	return specs
}
